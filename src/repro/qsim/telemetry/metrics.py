"""Metrics registry: process-wide counters, gauges and histograms.

One :class:`MetricsRegistry` per process (module-level :data:`REGISTRY`,
reachable through the convenience constructors :func:`counter`,
:func:`gauge` and :func:`histogram`).  Instruments are created on first
use and cached by name, so hot paths pay one dict lookup; mutation methods
check the shared telemetry switch (:func:`repro.qsim.telemetry.disable`)
and are exact no-ops while it is off.

Because the execution service runs workers as separate OS processes, the
registry is built around **snapshots**: :meth:`MetricsRegistry.snapshot`
freezes every instrument into a plain JSON-able dict, :func:`snapshot_delta`
subtracts two snapshots (what did *this job* contribute?), and
:func:`merge_snapshots` folds any number of per-job deltas back into one
aggregate -- which is exactly how worker metrics travel through the job
store to the ``metrics`` CLI verb.  Counter and histogram merges add;
gauges keep the most recent value.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional, Sequence, Union

from .trace import CONFIG

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "reset_metrics",
    "snapshot_delta",
    "merge_snapshots",
    "DEFAULT_BUCKETS",
]

#: default histogram bucket upper bounds, in seconds -- sized for the
#: latencies this stack actually produces (sub-ms cache hits up to
#: multi-second noisy batches); the implicit +inf bucket is always last
DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 30.0)


class Counter:
    """Monotonically increasing value (events, shots, cache hits)."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: Union[int, float] = 1) -> None:
        if not CONFIG.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (inc({amount}))")
        self.value += amount


class Gauge:
    """Point-in-time value (queue depth, cache size)."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: Union[int, float]) -> None:
        if not CONFIG.enabled:
            return
        self.value = float(value)


class Histogram:
    """Fixed-bucket distribution (latencies); buckets are upper bounds.

    ``counts`` has one slot per bucket plus a final +inf slot, matching the
    Prometheus histogram model (the exporter emits cumulative ``le``
    buckets from these).
    """

    __slots__ = ("name", "buckets", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS):
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name!r} needs sorted, non-empty buckets")
        self.name = name
        self.buckets = bounds
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: Union[int, float]) -> None:
        if not CONFIG.enabled:
            return
        value = float(value)
        index = 0
        for bound in self.buckets:
            if value <= bound:
                break
            index += 1
        self.counts[index] += 1
        self.sum += value
        self.count += 1


_Instrument = Union[Counter, Gauge, Histogram]

# returned while telemetry is disabled: accept writes (which the
# CONFIG.enabled guards drop anyway) without ever touching the registry,
# so a disabled process registers exactly zero instruments
_NULL_COUNTER = Counter("<disabled>")
_NULL_GAUGE = Gauge("<disabled>")
_NULL_HISTOGRAM = Histogram("<disabled>")


class MetricsRegistry:
    """Named instruments, created on first use; thread-safe registration."""

    def __init__(self) -> None:
        self._metrics: Dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    def _get(self, name: str, cls, *args) -> _Instrument:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} is already a {existing.kind}, not a {cls.kind}"
                )
            return existing
        with self._lock:
            existing = self._metrics.get(name)
            if existing is None:
                existing = self._metrics[name] = cls(name, *args)
            elif not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} is already a {existing.kind}, not a {cls.kind}"
                )
            return existing

    def counter(self, name: str) -> Counter:
        if not CONFIG.enabled:
            return _NULL_COUNTER
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        if not CONFIG.enabled:
            return _NULL_GAUGE
        return self._get(name, Gauge)

    def histogram(self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        if not CONFIG.enabled:
            return _NULL_HISTOGRAM
        return self._get(name, Histogram, buckets)

    def snapshot(self) -> Dict[str, Any]:
        """Freeze every instrument into the JSON-able snapshot shape."""
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Dict[str, Any]] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Counter):
                counters[name] = metric.value
            elif isinstance(metric, Gauge):
                gauges[name] = metric.value
            else:
                histograms[name] = {
                    "buckets": list(metric.buckets),
                    "counts": list(metric.counts),
                    "sum": metric.sum,
                    "count": metric.count,
                }
        return {"counters": counters, "gauges": gauges, "histograms": histograms}

    def reset(self) -> None:
        """Drop every instrument (tests and benchmark phases)."""
        with self._lock:
            self._metrics.clear()


#: the process-wide registry every instrumented layer reports into
REGISTRY = MetricsRegistry()


def counter(name: str) -> Counter:
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return REGISTRY.gauge(name)


def histogram(name: str, buckets: Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
    return REGISTRY.histogram(name, buckets)


def snapshot() -> Dict[str, Any]:
    return REGISTRY.snapshot()


def reset_metrics() -> None:
    REGISTRY.reset()


# ---------------------------------------------------------------------------
# snapshot arithmetic
# ---------------------------------------------------------------------------


def _empty_snapshot() -> Dict[str, Any]:
    return {"counters": {}, "gauges": {}, "histograms": {}}


def snapshot_delta(before: Dict[str, Any], after: Dict[str, Any]) -> Dict[str, Any]:
    """What changed between two snapshots of the *same* registry.

    Counters and histograms subtract (an instrument absent from *before*
    counts from zero); gauges keep the *after* value.  Zero-valued counter
    deltas are dropped so per-job artifacts stay small.
    """
    delta = _empty_snapshot()
    for name, value in after.get("counters", {}).items():
        change = value - before.get("counters", {}).get(name, 0.0)
        if change:
            delta["counters"][name] = change
    delta["gauges"] = dict(after.get("gauges", {}))
    before_hists = before.get("histograms", {})
    for name, hist in after.get("histograms", {}).items():
        prior = before_hists.get(name)
        if prior is not None and prior.get("buckets") == hist.get("buckets"):
            counts = [a - b for a, b in zip(hist["counts"], prior["counts"])]
            total = hist["count"] - prior["count"]
            total_sum = hist["sum"] - prior["sum"]
        else:
            counts, total, total_sum = list(hist["counts"]), hist["count"], hist["sum"]
        if total:
            delta["histograms"][name] = {
                "buckets": list(hist["buckets"]),
                "counts": counts,
                "sum": total_sum,
                "count": total,
            }
    return delta


def merge_snapshots(snapshots: Sequence[Optional[Dict[str, Any]]]) -> Dict[str, Any]:
    """Fold per-job/per-worker snapshots into one aggregate.

    ``None`` entries (jobs recorded before telemetry existed) are skipped.
    Histograms with mismatched bucket bounds keep the first shape seen and
    fold the stragglers into ``sum``/``count`` only, so an old artifact can
    never corrupt the bucket table.
    """
    merged = _empty_snapshot()
    for snap in snapshots:
        if not snap:
            continue
        for name, value in snap.get("counters", {}).items():
            merged["counters"][name] = merged["counters"].get(name, 0.0) + value
        merged["gauges"].update(snap.get("gauges", {}))
        for name, hist in snap.get("histograms", {}).items():
            target = merged["histograms"].get(name)
            if target is None:
                merged["histograms"][name] = {
                    "buckets": list(hist["buckets"]),
                    "counts": list(hist["counts"]),
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                continue
            if target["buckets"] == hist["buckets"]:
                target["counts"] = [a + b for a, b in zip(target["counts"], hist["counts"])]
            target["sum"] += hist["sum"]
            target["count"] += hist["count"]
    return merged
