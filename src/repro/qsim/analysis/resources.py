"""Resource estimation: the facts other passes (and callers) query.

:func:`estimate_resources` makes one pass over a circuit and returns a
:class:`ResourceEstimate`: width, depth, gate histogram, two-qubit-gate
count, measurement structure, Clifford facts, and the estimated peak bytes
each engine would need for the state alone.  The transpiler's metric
helpers (``count_ops``, ``circuit_depth``, ``two_qubit_gate_count``,
``is_clifford``) delegate here, and the backend-compatibility pass uses the
memory/Clifford facts to reject impossible jobs before any amplitude is
allocated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..circuit import QuantumCircuit
from ..instruction import Barrier, Measure, Reset
from ..registers import Qubit

__all__ = ["ResourceEstimate", "estimate_resources", "COMPLEX_BYTES"]

#: bytes per complex128 amplitude / density-matrix entry
COMPLEX_BYTES = 16


@dataclass(frozen=True)
class ResourceEstimate:
    """Static facts about one circuit, computed in a single pass."""

    num_qubits: int
    num_clbits: int
    size: int                      #: instructions, barriers excluded
    depth: int
    gate_counts: Dict[str, int] = field(default_factory=dict)
    two_qubit_gates: int = 0       #: non-barrier ops touching exactly 2 qubits
    multi_qubit_gates: int = 0     #: non-barrier ops touching 3+ qubits
    measurements: int = 0
    resets: int = 0
    has_mid_circuit_measurement: bool = False
    #: index of the first instruction the stabilizer engine cannot execute,
    #: or ``None`` when the whole circuit is Clifford
    first_non_clifford: Optional[int] = None

    @property
    def is_clifford(self) -> bool:
        """Whether every instruction has a stabilizer execution."""
        return self.first_non_clifford is None

    # -- per-engine memory, state storage only ------------------------------

    def statevector_bytes(self) -> int:
        """Peak bytes of the dense amplitude vector (``16 * 2**n``)."""
        return COMPLEX_BYTES * (2 ** self.num_qubits)

    def density_matrix_bytes(self) -> int:
        """Peak bytes of the dense density matrix (``16 * 4**n``)."""
        return COMPLEX_BYTES * (4 ** self.num_qubits)

    def stabilizer_bytes(self) -> int:
        """Approximate tableau bytes: ``2n`` generators of ``2n + 1`` bits."""
        n = self.num_qubits
        return ((2 * n) * (2 * n + 1) + 7) // 8

    def memory_bytes(self, backend: str) -> Optional[int]:
        """State bytes for a canonical *backend* name, ``None`` if unknown."""
        if backend == "statevector":
            return self.statevector_bytes()
        if backend == "density_matrix":
            return self.density_matrix_bytes()
        if backend == "stabilizer":
            return self.stabilizer_bytes()
        return None

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form, persisted alongside diagnostics in job records."""
        return {
            "num_qubits": self.num_qubits,
            "num_clbits": self.num_clbits,
            "size": self.size,
            "depth": self.depth,
            "gate_counts": dict(self.gate_counts),
            "two_qubit_gates": self.two_qubit_gates,
            "multi_qubit_gates": self.multi_qubit_gates,
            "measurements": self.measurements,
            "resets": self.resets,
            "has_mid_circuit_measurement": self.has_mid_circuit_measurement,
            "is_clifford": self.is_clifford,
            "first_non_clifford": self.first_non_clifford,
            "memory_bytes": {
                "statevector": self.statevector_bytes(),
                "density_matrix": self.density_matrix_bytes(),
                "stabilizer": self.stabilizer_bytes(),
            },
        }


def estimate_resources(circuit: QuantumCircuit) -> ResourceEstimate:
    """Compute a :class:`ResourceEstimate` for *circuit* in one pass.

    Clifford classification reuses the transpiler's
    ``_clifford_classification`` — the single source of truth the stabilizer
    engine executes from — and stops at the first non-Clifford instruction,
    so the scan stays cheap on deeply non-Clifford circuits.
    """
    from ..transpiler import _clifford_classification  # local import: cycle

    gate_counts: Dict[str, int] = {}
    two_qubit = 0
    multi_qubit = 0
    measurements = 0
    resets = 0
    size = 0
    mid_circuit = False
    first_non_clifford: Optional[int] = None
    measured: Set[Qubit] = set()

    for index, instr in enumerate(circuit.data):
        op = instr.operation
        name = op.name
        gate_counts[name] = gate_counts.get(name, 0) + 1
        if isinstance(op, Barrier):
            continue
        size += 1
        if isinstance(op, Measure):
            measurements += 1
            measured.add(instr.qubits[0])
        else:
            if isinstance(op, Reset):
                resets += 1
            if any(q in measured for q in instr.qubits):
                mid_circuit = True
            if len(instr.qubits) == 2:
                two_qubit += 1
            elif len(instr.qubits) > 2:
                multi_qubit += 1
        if first_non_clifford is None and _clifford_classification(op) is None:
            first_non_clifford = index

    return ResourceEstimate(
        num_qubits=circuit.num_qubits,
        num_clbits=circuit.num_clbits,
        size=size,
        depth=circuit.depth(),
        gate_counts=gate_counts,
        two_qubit_gates=two_qubit,
        multi_qubit_gates=multi_qubit,
        measurements=measurements,
        resets=resets,
        has_mid_circuit_measurement=mid_circuit,
        first_non_clifford=first_non_clifford,
    )
