"""Static circuit analysis: registry-based passes, structured diagnostics.

The analyzer walks the circuit IR — no amplitudes, no engines — and turns
latent execution-time failures into structured, source-located
:class:`Diagnostic` objects *before* any state is allocated::

    from repro.qsim.analysis import AnalysisTarget, analyze

    report = analyze(circuit, AnalysisTarget(backend="stabilizer"))
    for diagnostic in report.errors:
        print(diagnostic.format())     # file:line:col: error[QA401]: ...

Three front doors consume it:

* the CLI's ``lint`` verb and ``--lint`` run-path flag,
* the execution service, which validates every payload at submit time and
  persists the reports as a job artifact (error severity rejects the job
  before any worker claims it),
* the transpiler, whose metric helpers delegate to
  :func:`estimate_resources`.

New passes join via :func:`register_pass`; the code catalogue lives in
:data:`~repro.qsim.analysis.diagnostics.DIAGNOSTIC_CODES` and the guide in
``docs/analysis.md``.
"""

from .diagnostics import DIAGNOSTIC_CODES, Diagnostic, Severity
from .passes import (
    DEFAULT_MEMORY_BUDGET_BYTES,
    AnalysisContext,
    AnalysisReport,
    AnalysisTarget,
    analyze,
    available_passes,
    register_pass,
)
from .resources import ResourceEstimate, estimate_resources

__all__ = [
    "AnalysisContext",
    "AnalysisReport",
    "AnalysisTarget",
    "DEFAULT_MEMORY_BUDGET_BYTES",
    "DIAGNOSTIC_CODES",
    "Diagnostic",
    "ResourceEstimate",
    "Severity",
    "analyze",
    "available_passes",
    "estimate_resources",
    "register_pass",
]
