"""The pass framework and the core analysis passes.

:func:`analyze` drives every registered pass over one circuit and returns
an :class:`AnalysisReport`.  Passes are plain callables taking an
:class:`AnalysisContext` and yielding
:class:`~repro.qsim.analysis.diagnostics.Diagnostic` objects; they join the
driver through :func:`register_pass` (usable as a decorator), so future
passes — surface-code structure checks, scheduling lints — slot in without
touching this module's driver code.

Target-independent passes (measurement flow, unused resources) always run;
the noise-flow and backend-compatibility passes only emit findings when an
:class:`AnalysisTarget` describes where the circuit is headed.  The CLI's
``lint`` verb runs target-free by default, while the service's submit-time
validation always supplies the payload's backend/shots/noise config.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..circuit import QuantumCircuit, SourceSpan
from ..exceptions import BackendError
from ..instruction import Barrier, Measure, Reset
from ..registers import Clbit, Qubit
from .diagnostics import Diagnostic, Severity
from .resources import ResourceEstimate, estimate_resources

__all__ = [
    "AnalysisTarget",
    "AnalysisContext",
    "AnalysisReport",
    "analyze",
    "register_pass",
    "available_passes",
    "DEFAULT_MEMORY_BUDGET_BYTES",
]

#: default ceiling for the per-engine state-memory checks (QA402/QA403);
#: 4 GiB admits a 28-qubit statevector or a 14-qubit density matrix
DEFAULT_MEMORY_BUDGET_BYTES = 4 * 1024**3


@dataclass(frozen=True)
class AnalysisTarget:
    """Where the circuit is headed: execution config the compat passes check.

    Every field is optional; passes skip checks whose inputs are missing.
    ``backend`` accepts registry aliases (``dm``, ``chp``, ...) exactly like
    ``get_backend``.
    """

    backend: Optional[str] = None
    shots: Optional[int] = None
    noise_p: Optional[float] = None
    noise_channel: Optional[str] = None
    memory_budget_bytes: int = DEFAULT_MEMORY_BUDGET_BYTES


class AnalysisContext:
    """Everything a pass may look at: the circuit, the target, shared facts.

    ``resources`` is computed lazily and cached, so the first pass that
    needs the estimate pays for it and the rest share it.
    """

    def __init__(self, circuit: QuantumCircuit, target: Optional[AnalysisTarget] = None):
        self.circuit = circuit
        self.target = target if target is not None else AnalysisTarget()
        self._resources: Optional[ResourceEstimate] = None

    @property
    def resources(self) -> ResourceEstimate:
        if self._resources is None:
            self._resources = estimate_resources(self.circuit)
        return self._resources


class AnalysisReport:
    """The result of :func:`analyze`: diagnostics plus the resource facts."""

    def __init__(
        self,
        circuit_name: str,
        diagnostics: Sequence[Diagnostic],
        resources: Optional[ResourceEstimate] = None,
    ):
        self.circuit_name = circuit_name
        self.diagnostics = list(diagnostics)
        self.resources = resources

    def __iter__(self) -> Iterator[Diagnostic]:
        return iter(self.diagnostics)

    def __len__(self) -> int:
        return len(self.diagnostics)

    @property
    def errors(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> List[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    @property
    def has_errors(self) -> bool:
        return any(d.severity is Severity.ERROR for d in self.diagnostics)

    @property
    def max_severity(self) -> Optional[Severity]:
        """The most severe finding, or ``None`` for a clean report."""
        if not self.diagnostics:
            return None
        return max(d.severity for d in self.diagnostics)

    def at_least(self, severity: Severity) -> List[Diagnostic]:
        """Diagnostics at or above *severity*."""
        return [d for d in self.diagnostics if d.severity >= severity]

    def format(self, min_severity: Severity = Severity.INFO) -> str:
        """One gcc-style line per finding at or above *min_severity*."""
        return "\n".join(d.format() for d in self.at_least(min_severity))

    def to_dict(self) -> Dict[str, object]:
        return {
            "circuit": self.circuit_name,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
            "resources": None if self.resources is None else self.resources.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AnalysisReport":
        """Rebuild from :meth:`to_dict` output (resources stay serialized)."""
        raw = data.get("diagnostics", [])
        entries = raw if isinstance(raw, list) else []
        diagnostics = [Diagnostic.from_dict(entry) for entry in entries]
        return cls(str(data.get("circuit", "?")), diagnostics, resources=None)

    def __repr__(self) -> str:
        return (
            f"AnalysisReport(circuit={self.circuit_name!r}, "
            f"diagnostics={len(self.diagnostics)}, max={self.max_severity})"
        )


# ---------------------------------------------------------------------------
# Pass registry
# ---------------------------------------------------------------------------

PassFn = Callable[[AnalysisContext], Iterable[Diagnostic]]

_PASSES: Dict[str, PassFn] = {}


def register_pass(
    name: str, fn: Optional[PassFn] = None, overwrite: bool = False
) -> Callable[[PassFn], PassFn]:
    """Register an analysis pass under *name*, in run order.

    Usable directly (``register_pass("my_pass", fn)``) or as a decorator::

        @register_pass("surface_code_structure")
        def check(ctx):
            yield Diagnostic(...)

    Registering an existing name requires ``overwrite=True``, mirroring the
    backend and array-ops registries.
    """

    def _register(target: PassFn) -> PassFn:
        key = name.lower()
        if not overwrite and key in _PASSES:
            raise ValueError(
                f"analysis pass {name!r} is already registered (pass overwrite=True)"
            )
        _PASSES[key] = target
        return target

    if fn is not None:
        _register(fn)
        return lambda target: target
    return _register


def available_passes() -> List[str]:
    """Registered pass names, in run order."""
    return list(_PASSES)


def analyze(
    circuit: QuantumCircuit,
    target: Optional[AnalysisTarget] = None,
    passes: Optional[Sequence[str]] = None,
) -> AnalysisReport:
    """Run the registered passes (or the named subset) over *circuit*.

    Diagnostics are ordered by the instruction they anchor to, with
    circuit-level findings last; ties keep pass emission order.
    """
    context = AnalysisContext(circuit, target)
    selected = list(_PASSES) if passes is None else [p.lower() for p in passes]
    diagnostics: List[Diagnostic] = []
    for name in selected:
        try:
            pass_fn = _PASSES[name]
        except KeyError:
            raise ValueError(
                f"unknown analysis pass {name!r}; available: "
                f"{', '.join(available_passes())}"
            ) from None
        for diagnostic in pass_fn(context):
            diagnostics.append(diagnostic)
    diagnostics.sort(
        key=lambda d: (
            d.instruction_index if d.instruction_index is not None else len(circuit.data),
        )
    )
    return AnalysisReport(circuit.name, diagnostics, resources=context.resources)


# ---------------------------------------------------------------------------
# Core passes
# ---------------------------------------------------------------------------

def _bit_name(bit: Qubit) -> str:
    return f"{bit.register.name}[{bit.index}]"


def _clbit_name(bit: Clbit) -> str:
    return f"{bit.register.name}[{bit.index}]"


@register_pass("measure_flow")
def _measure_flow_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """QA101 gate-after-measure, QA102 clbit clobber, QA103 redundant
    measure, QA104 condition on a register with no measurement yet.

    Classically-conditioned instructions are intentional feed-forward, so a
    conditioned gate on a measured qubit does not raise QA101; instead QA104
    flags conditions that can never vary because no bit of the compared
    register has been written at that point (the register always reads 0).
    """
    measured: Set[Qubit] = set()          # measured, no gate/reset since
    warned_after_measure: Set[Qubit] = set()
    written: Dict[Clbit, Optional[SourceSpan]] = {}
    warned_unwritten_cregs: Set[object] = set()
    for index, instr in enumerate(ctx.circuit.data):
        op = instr.operation
        if isinstance(op, Barrier):
            continue
        if instr.condition is not None:
            creg, value = instr.condition
            if (
                creg not in warned_unwritten_cregs
                and not any(clbit in written for clbit in creg)
            ):
                warned_unwritten_cregs.add(creg)
                outcome = "always" if value == 0 else "never"
                yield Diagnostic(
                    "QA104",
                    Severity.WARNING,
                    f"condition on classical register {creg.name!r} before any "
                    f"of its bits is measured; the register always reads 0, so "
                    f"the {op.name!r} instruction {outcome} executes",
                    span=instr.span,
                    instruction_index=index,
                    source="measure_flow",
                )
        if isinstance(op, Measure):
            qubit = instr.qubits[0]
            clbit = instr.clbits[0]
            if qubit in measured:
                yield Diagnostic(
                    "QA103",
                    Severity.INFO,
                    f"qubit {_bit_name(qubit)} is measured again with no gate or "
                    "reset since its last measurement (the result is identical)",
                    span=instr.span,
                    instruction_index=index,
                    source="measure_flow",
                )
            if clbit in written:
                previous = written[clbit]
                where = f" (previously written at {previous.location()})" if previous else ""
                yield Diagnostic(
                    "QA102",
                    Severity.WARNING,
                    f"measurement overwrites classical bit {_clbit_name(clbit)}"
                    f"{where}; the earlier result is lost",
                    span=instr.span,
                    instruction_index=index,
                    source="measure_flow",
                )
            written[clbit] = instr.span
            measured.add(qubit)
            warned_after_measure.discard(qubit)
            continue
        if isinstance(op, Reset):
            measured.discard(instr.qubits[0])
            warned_after_measure.discard(instr.qubits[0])
            continue
        for qubit in instr.qubits:
            if (
                qubit in measured
                and qubit not in warned_after_measure
                and instr.condition is None
            ):
                # conditioned gates after measurement are deliberate
                # feed-forward (teleportation, error correction), not a
                # forgotten reset
                yield Diagnostic(
                    "QA101",
                    Severity.WARNING,
                    f"gate {op.name!r} acts on qubit {_bit_name(qubit)} after it "
                    "was measured, without a reset; if the qubit is being "
                    "reused, add an explicit reset",
                    span=instr.span,
                    instruction_index=index,
                    source="measure_flow",
                )
                warned_after_measure.add(qubit)
            measured.discard(qubit)


@register_pass("unused")
def _unused_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """QA201 unused qubits / registers, QA202 never-written classical bits."""
    circuit = ctx.circuit
    used_qubits: Set[Qubit] = set()
    written_clbits: Set[Clbit] = set()
    for instr in circuit.data:
        if isinstance(instr.operation, Barrier):
            continue  # a barrier is scheduling metadata, not a use
        used_qubits.update(instr.qubits)
        written_clbits.update(instr.clbits)
    for reg in circuit.qregs:
        span = circuit.register_spans.get(reg)
        unused = [q for q in reg if q not in used_qubits]
        if len(unused) == reg.size:
            yield Diagnostic(
                "QA201",
                Severity.INFO,
                f"quantum register {reg.name!r} ({reg.size} qubit(s)) is never used",
                span=span,
                source="unused",
            )
        else:
            for qubit in unused:
                yield Diagnostic(
                    "QA201",
                    Severity.INFO,
                    f"qubit {_bit_name(qubit)} is never used by any instruction",
                    span=span,
                    source="unused",
                )
    for creg in circuit.cregs:
        span = circuit.register_spans.get(creg)
        unwritten = [c for c in creg if c not in written_clbits]
        if len(unwritten) == creg.size:
            yield Diagnostic(
                "QA202",
                Severity.INFO,
                f"classical register {creg.name!r} ({creg.size} bit(s)) is never "
                "written by any measurement",
                span=span,
                source="unused",
            )
        else:
            for clbit in unwritten:
                yield Diagnostic(
                    "QA202",
                    Severity.INFO,
                    f"classical bit {_clbit_name(clbit)} is never written by any "
                    "measurement",
                    span=span,
                    source="unused",
                )


@register_pass("noise_flow")
def _noise_flow_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """QA301: noise is configured but a gate-touched qubit is never measured."""
    noise_p = ctx.target.noise_p
    if noise_p is None or noise_p <= 0:
        return
    channel = ctx.target.noise_channel or "depolarizing"
    touched: Dict[Qubit, Tuple[Optional[SourceSpan], Optional[int]]] = {}
    ever_measured: Set[Qubit] = set()
    for index, instr in enumerate(ctx.circuit.data):
        op = instr.operation
        if isinstance(op, Measure):
            ever_measured.add(instr.qubits[0])
        elif not isinstance(op, (Barrier, Reset)):
            for qubit in instr.qubits:
                touched[qubit] = (instr.span, index)
    if not ever_measured and touched:
        yield Diagnostic(
            "QA301",
            Severity.WARNING,
            f"{channel} noise (p={noise_p:g}) is configured but the circuit "
            "has no measurements; the accumulated errors are never observed",
            source="noise_flow",
        )
        return
    for qubit, (span, index) in touched.items():
        if qubit not in ever_measured:
            yield Diagnostic(
                "QA301",
                Severity.WARNING,
                f"{channel} noise (p={noise_p:g}) accumulates on qubit "
                f"{_bit_name(qubit)}, which is never measured",
                span=span,
                instruction_index=index,
                source="noise_flow",
            )


def _format_bytes(count: int) -> str:
    value = float(count)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB", "PiB"):
        if value < 1024.0 or unit == "PiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    return f"{int(count)} B"


@register_pass("backend_compat")
def _backend_compat_pass(ctx: AnalysisContext) -> Iterator[Diagnostic]:
    """QA401..QA406: can the target engine actually run this circuit?"""
    from ..backends.engines import NOISE_CHANNELS  # local import: cycle
    from ..backends.registry import resolve_backend_name  # local import: cycle

    target = ctx.target
    if target.shots is not None and target.shots <= 0:
        yield Diagnostic(
            "QA406",
            Severity.ERROR,
            f"shot count must be positive, got {target.shots}",
            source="backend_compat",
        )
    if target.noise_p is not None and target.noise_channel is not None:
        if target.noise_channel not in NOISE_CHANNELS:
            yield Diagnostic(
                "QA404",
                Severity.ERROR,
                f"unknown noise channel {target.noise_channel!r}; available: "
                f"{', '.join(NOISE_CHANNELS)}",
                source="backend_compat",
            )
    if target.backend is None:
        return
    try:
        canonical = resolve_backend_name(target.backend)
    except BackendError as exc:
        yield Diagnostic("QA405", Severity.ERROR, str(exc), source="backend_compat")
        return
    resources = ctx.resources
    if canonical == "stabilizer" and resources.first_non_clifford is not None:
        index = resources.first_non_clifford
        instr = ctx.circuit.data[index]
        yield Diagnostic(
            "QA401",
            Severity.ERROR,
            f"instruction {instr.operation.name!r} has no stabilizer execution; "
            "the 'stabilizer' backend runs Clifford circuits only "
            "(use 'statevector' or 'density_matrix' instead)",
            span=instr.span,
            instruction_index=index,
            source="backend_compat",
        )
    if canonical == "statevector":
        needed = resources.statevector_bytes()
        if needed > target.memory_budget_bytes:
            yield Diagnostic(
                "QA402",
                Severity.ERROR,
                f"a {resources.num_qubits}-qubit statevector needs "
                f"{_format_bytes(needed)}, over the {_format_bytes(target.memory_budget_bytes)} "
                "budget (the 'stabilizer' backend handles wide Clifford circuits)",
                source="backend_compat",
            )
    if canonical == "density_matrix":
        needed = resources.density_matrix_bytes()
        if needed > target.memory_budget_bytes:
            yield Diagnostic(
                "QA403",
                Severity.ERROR,
                f"a {resources.num_qubits}-qubit density matrix needs "
                f"{_format_bytes(needed)}, over the {_format_bytes(target.memory_budget_bytes)} "
                "budget",
                source="backend_compat",
            )
