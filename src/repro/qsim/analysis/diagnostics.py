"""Structured diagnostics: stable codes, severities, source locations.

A :class:`Diagnostic` is one finding of the static analyzer: a stable code
(``QA101``), a :class:`Severity`, a human message, and — when the circuit
came through the QASM importer — a :class:`~repro.qsim.circuit.SourceSpan`
pointing at the offending ``file:line:column``.  The full code catalogue
lives in :data:`DIAGNOSTIC_CODES`; ``docs/analysis.md`` is the guide.

Codes are grouped by family:

* ``QA0xx`` — input problems (parse errors surfaced as diagnostics),
* ``QA1xx`` — measurement-flow findings,
* ``QA2xx`` — unused-resource findings,
* ``QA3xx`` — noise-flow findings,
* ``QA4xx`` — backend-compatibility findings (only emitted when an
  :class:`~repro.qsim.analysis.passes.AnalysisTarget` is supplied).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from ..circuit import SourceSpan

__all__ = ["Severity", "Diagnostic", "DIAGNOSTIC_CODES"]


class Severity(enum.IntEnum):
    """Diagnostic severity, ordered so comparisons mean what you expect."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in formatted output (``error``, ...)."""
        return self.name.lower()

    @classmethod
    def parse(cls, text: str) -> "Severity":
        """Parse a severity name; accepts ``warn`` as ``warning``."""
        normalized = text.strip().lower()
        if normalized == "warn":
            normalized = "warning"
        try:
            return cls[normalized.upper()]
        except KeyError:
            choices = ", ".join(s.label for s in cls)
            raise ValueError(f"unknown severity {text!r} (choose from {choices})") from None


#: every stable diagnostic code -> one-line description (the catalogue)
DIAGNOSTIC_CODES: Dict[str, str] = {
    "QA001": "OpenQASM source failed to parse",
    "QA101": "gate applied to a measured qubit without an intervening reset",
    "QA102": "measurement overwrites a classical bit that was already written",
    "QA103": "qubit re-measured with no gate or reset since its last measurement",
    "QA104": "condition compares a classical register no measurement has written yet",
    "QA201": "qubit is never used by any instruction",
    "QA202": "classical bit is never written by any measurement",
    "QA301": "noise accumulates on a qubit that is never measured",
    "QA401": "non-Clifford instruction targets the stabilizer backend",
    "QA402": "statevector memory estimate exceeds the budget",
    "QA403": "density-matrix memory estimate exceeds the budget",
    "QA404": "unknown noise channel for the target backend",
    "QA405": "unknown backend name",
    "QA406": "shot count must be positive",
}


@dataclass(frozen=True)
class Diagnostic:
    """One analyzer finding; immutable and JSON-serializable.

    ``instruction_index`` is the position in ``circuit.data`` the finding
    anchors to (``None`` for circuit-level findings such as an unused
    register), and ``source`` names the pass that produced it.
    """

    code: str
    severity: Severity
    message: str
    span: Optional[SourceSpan] = None
    instruction_index: Optional[int] = None
    source: Optional[str] = None

    def __post_init__(self) -> None:
        if self.code not in DIAGNOSTIC_CODES:
            raise ValueError(
                f"unknown diagnostic code {self.code!r}; register it in "
                "repro.qsim.analysis.diagnostics.DIAGNOSTIC_CODES"
            )

    def location(self) -> str:
        """``file:line:column`` when a span is known, ``<circuit>`` otherwise."""
        if self.span is None:
            return "<circuit>"
        return self.span.location()

    def format(self) -> str:
        """gcc-style one-liner: ``file:line:col: error[QA401]: message``."""
        return f"{self.location()}: {self.severity.label}[{self.code}]: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-JSON form, the shape persisted in the service job record."""
        payload: Dict[str, Any] = {
            "code": self.code,
            "severity": self.severity.label,
            "message": self.message,
        }
        if self.span is not None:
            payload["span"] = {
                "line": self.span.line,
                "column": self.span.column,
                "source": self.span.source,
            }
        if self.instruction_index is not None:
            payload["instruction_index"] = self.instruction_index
        if self.source is not None:
            payload["source"] = self.source
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Diagnostic":
        """Rebuild a diagnostic from :meth:`to_dict` output."""
        span_data = data.get("span")
        span = None
        if span_data is not None:
            span = SourceSpan(
                int(span_data["line"]),
                int(span_data["column"]),
                span_data.get("source"),
            )
        return cls(
            code=str(data["code"]),
            severity=Severity.parse(str(data["severity"])),
            message=str(data["message"]),
            span=span,
            instruction_index=data.get("instruction_index"),
            source=data.get("source"),
        )
