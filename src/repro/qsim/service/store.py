"""Sqlite-backed durable job store: the service's single source of truth.

One database file holds both tables of the execution service:

* ``jobs`` -- every submitted batch payload with its full lifecycle state
  (``QUEUED -> RUNNING -> DONE / FAILED / CANCELLED``), attempt counter,
  lease bookkeeping and per-job artifacts (the serialized
  :class:`~repro.qsim.backends.result.Result` counts/timing JSON on
  success, the formatted traceback on failure).
* ``compiled_circuits`` -- the persistent layer of the compiled-circuit
  cache (:mod:`~repro.qsim.service.cache`).

Durability and concurrency model
--------------------------------
The database runs in WAL mode with a generous busy timeout, so any number
of submitter/worker/observer *processes* can share one file.  Every state
transition is a single guarded ``UPDATE ... WHERE state = ...`` statement,
which sqlite executes atomically:

* **claim** flips ``QUEUED -> RUNNING`` only if the row is still queued, so
  two workers racing for the same job cannot both win (the loser's UPDATE
  matches zero rows and it moves on to the next candidate);
* **finish** flips ``RUNNING -> DONE`` only if the job is still running
  *and still owned by the finishing worker*, so a ``cancel`` (or a lease
  reclaim) that lands mid-execution wins over the stale worker's result --
  a cancelled job can never end up ``DONE``;
* **reclaim** returns expired ``RUNNING`` leases to ``QUEUED`` (or
  ``FAILED`` once the attempt budget is spent), which is how a SIGKILLed
  worker's job gets re-run by the survivors.

Connections are cheap and per-instance; anything that runs on its own
thread or process (worker loops, heartbeat threads) opens its own
:class:`JobStore` rather than sharing one.
"""

from __future__ import annotations

import json
import os
import sqlite3
import time
import uuid
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from ..exceptions import QsimError

__all__ = ["JobRecord", "JobStore", "ServiceError", "JOB_STATES"]

#: every lifecycle state a job can be in
JOB_STATES = ("QUEUED", "RUNNING", "DONE", "FAILED", "CANCELLED")

#: states from which no further transition happens
TERMINAL_STATES = ("DONE", "FAILED", "CANCELLED")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    job_id           TEXT PRIMARY KEY,
    state            TEXT NOT NULL
                     CHECK (state IN ('QUEUED','RUNNING','DONE','FAILED','CANCELLED')),
    payload          TEXT NOT NULL,
    created_at       REAL NOT NULL,
    updated_at       REAL NOT NULL,
    not_before       REAL NOT NULL DEFAULT 0,
    attempts         INTEGER NOT NULL DEFAULT 0,
    max_attempts     INTEGER NOT NULL DEFAULT 3,
    worker_id        TEXT,
    lease_expires_at REAL,
    heartbeat_at     REAL,
    result           TEXT,
    error            TEXT,
    telemetry        TEXT,
    diagnostics      TEXT
);
CREATE INDEX IF NOT EXISTS idx_jobs_claim ON jobs (state, not_before, created_at);

CREATE TABLE IF NOT EXISTS compiled_circuits (
    cache_key  TEXT PRIMARY KEY,
    backend    TEXT NOT NULL,
    noise      TEXT NOT NULL,
    qasm       TEXT NOT NULL,
    created_at REAL NOT NULL,
    hits       INTEGER NOT NULL DEFAULT 0
);
"""


class ServiceError(QsimError):
    """Raised by the execution service layer (unknown job, bad transition)."""


@dataclass
class JobRecord:
    """One row of the ``jobs`` table, as plain data."""

    job_id: str
    state: str
    payload: str
    created_at: float
    updated_at: float
    not_before: float
    attempts: int
    max_attempts: int
    worker_id: Optional[str]
    lease_expires_at: Optional[float]
    heartbeat_at: Optional[float]
    result: Optional[str]
    error: Optional[str]
    telemetry: Optional[str] = None
    diagnostics: Optional[str] = None

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def result_dict(self) -> Dict[str, Any]:
        """The stored :meth:`Result.to_dict` artifact of a ``DONE`` job."""
        if self.result is None:
            raise ServiceError(
                f"job {self.job_id} has no result (state {self.state})"
            )
        return json.loads(self.result)

    def telemetry_dict(self) -> Dict[str, Any]:
        """The stored telemetry artifact (span tree + metrics delta).

        Raises :class:`ServiceError` when the job has none -- either it is
        not ``DONE`` yet, or it ran with telemetry disabled (or on a build
        that predates the subsystem).
        """
        if self.telemetry is None:
            raise ServiceError(
                f"job {self.job_id} has no telemetry artifact (state {self.state};"
                " jobs record one on completion when telemetry is enabled)"
            )
        return json.loads(self.telemetry)

    def diagnostics_dict(self) -> Dict[str, Any]:
        """The stored submit-time analysis artifact (per-circuit reports).

        Raises :class:`ServiceError` when the job has none -- submitted with
        validation skipped, or recorded by a build that predates the static
        analyzer.  See ``docs/analysis.md`` for the artifact shape.
        """
        if self.diagnostics is None:
            raise ServiceError(
                f"job {self.job_id} has no diagnostics artifact (submitted "
                "with validation skipped, or by an older build)"
            )
        return json.loads(self.diagnostics)


def _row_to_record(row: sqlite3.Row) -> JobRecord:
    return JobRecord(**{key: row[key] for key in row.keys()})


class JobStore:
    """Open (creating if needed) the service database at *path*."""

    def __init__(self, path: str, timeout: float = 10.0):
        self.path = os.fspath(path)
        self._conn = sqlite3.connect(
            self.path, timeout=timeout, isolation_level=None, check_same_thread=False
        )
        self._conn.row_factory = sqlite3.Row
        self._conn.execute("PRAGMA journal_mode=WAL")
        self._conn.execute("PRAGMA synchronous=NORMAL")
        self._conn.execute(f"PRAGMA busy_timeout={int(timeout * 1000)}")
        self._conn.executescript(_SCHEMA)
        self._migrate()

    def _migrate(self) -> None:
        """Bring a database created by an older build up to this schema.

        ``CREATE TABLE IF NOT EXISTS`` leaves pre-existing tables untouched,
        so columns added later (``telemetry``, ``diagnostics``) must be
        grafted onto old databases here.  ``ADD COLUMN`` with no constraints is a pure
        metadata operation in sqlite -- safe on a live multi-process store.
        """
        columns = {
            row["name"] for row in self._conn.execute("PRAGMA table_info(jobs)")
        }
        for column in ("telemetry", "diagnostics"):
            if column in columns:
                continue
            try:
                self._conn.execute(f"ALTER TABLE jobs ADD COLUMN {column} TEXT")
            except sqlite3.OperationalError as exc:  # pragma: no cover - migration race
                # two processes opening an old database concurrently: the
                # loser's duplicate ALTER is harmless
                if "duplicate column" not in str(exc).lower():
                    raise

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "JobStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- submission --------------------------------------------------------------

    def submit(
        self,
        payload_json: str,
        max_attempts: int = 3,
        not_before: float = 0.0,
        diagnostics: Optional[str] = None,
        rejected_error: Optional[str] = None,
    ) -> str:
        """Insert a new ``QUEUED`` job and return its durable id.

        Ids are ``job-<uuid4 hex>``: unique across concurrent submitters
        without any coordination, and the primary-key constraint turns the
        astronomically unlikely collision into a hard error instead of a
        silent overwrite.

        *diagnostics*, when given, is the submit-time analysis artifact
        (serialized JSON) stored on the row.  *rejected_error* inserts the
        job directly as terminal ``FAILED`` with that error text -- this is
        how submit-time validation rejects an error-severity payload while
        still recording it durably: claims only ever select ``QUEUED``
        rows, so a rejected job is never picked up by any worker.
        """
        if max_attempts < 1:
            raise ServiceError("max_attempts must be at least 1")
        job_id = f"job-{uuid.uuid4().hex}"
        now = time.time()
        state = "QUEUED" if rejected_error is None else "FAILED"
        self._conn.execute(
            "INSERT INTO jobs (job_id, state, payload, created_at, updated_at,"
            " not_before, max_attempts, diagnostics, error)"
            " VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                job_id,
                state,
                payload_json,
                now,
                now,
                not_before,
                max_attempts,
                diagnostics,
                rejected_error,
            ),
        )
        return job_id

    # -- inspection --------------------------------------------------------------

    def get(self, job_id: str) -> JobRecord:
        row = self._conn.execute(
            "SELECT * FROM jobs WHERE job_id = ?", (job_id,)
        ).fetchone()
        if row is None:
            raise ServiceError(f"no such job: {job_id}")
        return _row_to_record(row)

    def list_jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        if state is not None and state not in JOB_STATES:
            raise ServiceError(f"unknown job state {state!r} (choose from {JOB_STATES})")
        if state is None:
            rows = self._conn.execute("SELECT * FROM jobs ORDER BY created_at").fetchall()
        else:
            rows = self._conn.execute(
                "SELECT * FROM jobs WHERE state = ? ORDER BY created_at", (state,)
            ).fetchall()
        return [_row_to_record(row) for row in rows]

    def stats(self) -> Dict[str, Any]:
        """Queue health snapshot: per-state counts, depth, cache statistics.

        ``job_cache`` aggregates the per-job cache hit/miss metadata across
        every ``DONE`` job, so the fleet-wide hit-rate (the number the
        compiled-circuit cache exists to maximise) is one ``queue-stats``
        away instead of buried in individual job artifacts.
        """
        counts = {state: 0 for state in JOB_STATES}
        for row in self._conn.execute("SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"):
            counts[row["state"]] = row["n"]
        oldest = self._conn.execute(
            "SELECT MIN(created_at) AS t FROM jobs WHERE state = 'QUEUED'"
        ).fetchone()["t"]
        cache = self._conn.execute(
            "SELECT COUNT(*) AS n, COALESCE(SUM(hits), 0) AS hits FROM compiled_circuits"
        ).fetchone()
        job_cache = {"hits": 0, "misses": 0, "corrupt": 0, "jobs": 0}
        for row in self._conn.execute("SELECT result FROM jobs WHERE state = 'DONE'"):
            try:
                per_job = json.loads(row["result"])["metadata"]["cache"]
            except (TypeError, KeyError, ValueError):
                continue  # a DONE job recorded by an older build, or hand-edited
            job_cache["jobs"] += 1
            for key in ("hits", "misses", "corrupt"):
                job_cache[key] += int(per_job.get(key, 0))
        lookups = job_cache["hits"] + job_cache["misses"]
        job_cache["hit_rate"] = (job_cache["hits"] / lookups) if lookups else None
        return {
            "states": counts,
            "queued_depth": counts["QUEUED"],
            "oldest_queued_age": None if oldest is None else max(0.0, time.time() - oldest),
            "cache_entries": cache["n"],
            "cache_disk_hits": cache["hits"],
            "job_cache": job_cache,
        }

    # -- worker-side transitions -------------------------------------------------

    def claim(self, worker_id: str, lease_timeout: float) -> Optional[JobRecord]:
        """Atomically claim the oldest runnable ``QUEUED`` job, or ``None``.

        The guarded UPDATE is the atomicity point: even if many workers pick
        the same candidate row, exactly one UPDATE finds it still ``QUEUED``.
        The claim increments ``attempts`` and takes a lease of
        *lease_timeout* seconds, to be extended by heartbeats.
        """
        now = time.time()
        candidates = self._conn.execute(
            "SELECT job_id FROM jobs WHERE state = 'QUEUED' AND not_before <= ?"
            " ORDER BY created_at, job_id LIMIT 8",
            (now,),
        ).fetchall()
        for row in candidates:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = 'RUNNING', worker_id = ?,"
                " attempts = attempts + 1, lease_expires_at = ?, heartbeat_at = ?,"
                " updated_at = ? WHERE job_id = ? AND state = 'QUEUED'",
                (worker_id, now + lease_timeout, now, now, row["job_id"]),
            )
            if cursor.rowcount == 1:
                return self.get(row["job_id"])
        return None

    def heartbeat(self, job_id: str, worker_id: str, lease_timeout: float) -> bool:
        """Extend the lease of a job this worker is still running.

        Returns ``False`` when the job is no longer this worker's to run
        (cancelled, reclaimed after a lease expiry, ...) -- the worker
        should abandon the execution's result.
        """
        now = time.time()
        cursor = self._conn.execute(
            "UPDATE jobs SET lease_expires_at = ?, heartbeat_at = ?, updated_at = ?"
            " WHERE job_id = ? AND state = 'RUNNING' AND worker_id = ?",
            (now + lease_timeout, now, now, job_id, worker_id),
        )
        return cursor.rowcount == 1

    def finish(
        self,
        job_id: str,
        worker_id: str,
        result: Dict[str, Any],
        telemetry: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Record a successful execution: ``RUNNING -> DONE`` with artifacts.

        Guarded on both state and ownership, so a cancel or reclaim that
        raced the execution wins and the stale result is dropped (the
        ``False`` return tells the worker its work was discarded).
        *telemetry*, when given, is the worker's per-job observability
        artifact -- the span tree plus the metrics delta -- stored alongside
        the result and surfaced by the ``trace`` / ``metrics`` CLI verbs.
        """
        cursor = self._conn.execute(
            "UPDATE jobs SET state = 'DONE', result = ?, error = NULL, telemetry = ?,"
            " updated_at = ?, lease_expires_at = NULL WHERE job_id = ?"
            " AND state = 'RUNNING' AND worker_id = ?",
            (
                json.dumps(result),
                None if telemetry is None else json.dumps(telemetry),
                time.time(),
                job_id,
                worker_id,
            ),
        )
        return cursor.rowcount == 1

    def fail(
        self,
        job_id: str,
        worker_id: str,
        error: str,
        retry_delay: float = 0.0,
    ) -> Optional[str]:
        """Record a failed attempt; retry with backoff or go ``FAILED``.

        While attempts remain the job returns to ``QUEUED`` with
        ``not_before = now + retry_delay``; once the attempt budget is spent
        it goes terminal ``FAILED``.  Either way the traceback artifact is
        stored.  Returns the resulting state, or ``None`` when the job was
        no longer this worker's to fail (same ownership guard as
        :meth:`finish`).
        """
        now = time.time()
        cursor = self._conn.execute(
            "UPDATE jobs SET"
            " state = CASE WHEN attempts >= max_attempts THEN 'FAILED' ELSE 'QUEUED' END,"
            " not_before = CASE WHEN attempts >= max_attempts THEN not_before ELSE ? END,"
            " error = ?, worker_id = NULL, lease_expires_at = NULL, updated_at = ?"
            " WHERE job_id = ? AND state = 'RUNNING' AND worker_id = ?",
            (now + retry_delay, error, now, job_id, worker_id),
        )
        if cursor.rowcount != 1:
            return None
        return self.get(job_id).state

    def reclaim_expired(self, retry_delay: float = 0.0) -> int:
        """Return expired ``RUNNING`` leases to the queue (crash recovery).

        A worker that died (or lost its heartbeat) leaves its job
        ``RUNNING`` with a lease in the past; any surviving worker calls
        this before claiming.  Jobs with attempts left are re-queued after
        *retry_delay*; jobs whose budget is spent go ``FAILED`` with a
        descriptive error artifact.  Returns the number of reclaimed rows.
        """
        now = time.time()
        cursor = self._conn.execute(
            "UPDATE jobs SET"
            " state = CASE WHEN attempts >= max_attempts THEN 'FAILED' ELSE 'QUEUED' END,"
            " not_before = CASE WHEN attempts >= max_attempts THEN not_before ELSE ? END,"
            " error = CASE WHEN attempts >= max_attempts THEN"
            "   'lease expired after ' || attempts || ' attempt(s); worker ' ||"
            "   COALESCE(worker_id, '?') || ' presumed dead' ELSE error END,"
            " worker_id = NULL, lease_expires_at = NULL, updated_at = ?"
            " WHERE state = 'RUNNING' AND lease_expires_at < ?",
            (now + retry_delay, now, now),
        )
        return cursor.rowcount

    # -- user-side transitions ---------------------------------------------------

    def cancel(self, job_id: str) -> bool:
        """Cancel a job that has not finished; ``True`` if this call won.

        ``QUEUED`` and ``RUNNING`` jobs flip to ``CANCELLED``; the ownership
        guards on :meth:`finish`/:meth:`fail` then make the stale worker's
        outcome a no-op, so a cancelled job can never become ``DONE``.
        Cancelling a terminal job returns ``False`` and changes nothing.
        """
        cursor = self._conn.execute(
            "UPDATE jobs SET state = 'CANCELLED', worker_id = NULL,"
            " lease_expires_at = NULL, updated_at = ?"
            " WHERE job_id = ? AND state IN ('QUEUED', 'RUNNING')",
            (time.time(), job_id),
        )
        return cursor.rowcount == 1

    # -- retention ---------------------------------------------------------------

    def purge(self, older_than: float) -> int:
        """Delete terminal ``DONE``/``CANCELLED`` jobs older than a TTL.

        *older_than* is an age in seconds measured against ``updated_at``
        (the moment the job went terminal); ``0`` purges every finished and
        cancelled job.  Artifacts (result, error, telemetry) go with the
        row -- this is the retention/GC half of the durable queue.
        ``FAILED`` jobs are deliberately kept: their traceback artifact is
        the only record of what went wrong, so disposing of them is an
        explicit operator decision (cancel semantics do not apply either).
        Returns the number of deleted rows.
        """
        if older_than < 0:
            raise ServiceError("older_than must be >= 0 seconds")
        cursor = self._conn.execute(
            "DELETE FROM jobs WHERE state IN ('DONE', 'CANCELLED') AND updated_at < ?",
            (time.time() - older_than,),
        )
        return cursor.rowcount

    # -- telemetry artifacts -------------------------------------------------------

    def aggregate_telemetry_metrics(self) -> Dict[str, Any]:
        """Merged per-job metrics deltas across every ``DONE`` job.

        Each completed job carries the metrics its execution contributed
        (see :meth:`finish`); folding the deltas with
        :func:`repro.qsim.telemetry.merge_snapshots` yields fleet-wide
        totals -- what the ``metrics`` CLI verb prints.  Jobs without an
        artifact (telemetry disabled, older builds) are skipped.
        """
        from ..telemetry import merge_snapshots

        snapshots = []
        for row in self._conn.execute(
            "SELECT telemetry FROM jobs WHERE state = 'DONE' AND telemetry IS NOT NULL"
        ):
            try:
                snapshots.append(json.loads(row["telemetry"]).get("metrics"))
            except ValueError:
                continue
        return merge_snapshots(snapshots)

    # -- compiled-circuit cache rows ---------------------------------------------

    def cache_get(self, cache_key: str) -> Optional[str]:
        """The stored compiled QASM for *cache_key*, bumping its hit counter."""
        row = self._conn.execute(
            "SELECT qasm FROM compiled_circuits WHERE cache_key = ?", (cache_key,)
        ).fetchone()
        if row is None:
            return None
        self._conn.execute(
            "UPDATE compiled_circuits SET hits = hits + 1 WHERE cache_key = ?",
            (cache_key,),
        )
        return row["qasm"]

    def cache_put(self, cache_key: str, backend: str, noise: str, qasm: str) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO compiled_circuits"
            " (cache_key, backend, noise, qasm, created_at, hits)"
            " VALUES (?, ?, ?, ?, ?, COALESCE("
            "   (SELECT hits FROM compiled_circuits WHERE cache_key = ?), 0))",
            (cache_key, backend, noise, qasm, time.time(), cache_key),
        )

    def cache_delete(self, cache_key: str) -> None:
        self._conn.execute(
            "DELETE FROM compiled_circuits WHERE cache_key = ?", (cache_key,)
        )

    def __repr__(self) -> str:
        return f"JobStore(path={self.path!r})"
