"""Submit-time payload validation: the service's reject-early front door.

Every :class:`~repro.qsim.service.payload.BatchPayload` is analyzed at
submission — before the job row is even inserted — against the payload's
own run config (backend, shots, noise).  The per-circuit
:class:`~repro.qsim.analysis.AnalysisReport` objects are serialized into
the job's ``diagnostics`` column as a durable artifact; a payload with any
error-severity finding (a non-Clifford circuit headed for ``stabilizer``,
a 30-qubit dense request, an unknown backend name) is recorded directly as
``FAILED`` so no worker ever claims it and no amplitude is ever allocated.

CLI: ``qutes submit`` prints the findings and exits non-zero on rejection
(``--no-lint`` skips validation entirely); ``qutes status`` summarises the
stored artifact.  See ``docs/analysis.md`` and ``docs/service.md``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..analysis import AnalysisReport, AnalysisTarget, Diagnostic, Severity, analyze
from ..exceptions import QasmError
from ..qasm import from_qasm
from .payload import BatchPayload
from .store import JobStore

__all__ = ["DIAGNOSTICS_ARTIFACT_VERSION", "analysis_target", "validate_payload", "submit_payload"]

#: bumped whenever the diagnostics artifact JSON shape changes incompatibly
DIAGNOSTICS_ARTIFACT_VERSION = 1


def analysis_target(payload: BatchPayload) -> AnalysisTarget:
    """The :class:`AnalysisTarget` described by *payload*'s run config."""
    noise = payload.noise or {}
    noise_p = noise.get("p")
    return AnalysisTarget(
        backend=payload.backend,
        shots=payload.shots,
        noise_p=None if noise_p is None else float(noise_p),
        noise_channel=noise.get("channel", "depolarizing") if payload.noise else None,
    )


def validate_payload(payload: BatchPayload) -> List[AnalysisReport]:
    """Analyze every circuit of *payload* against its own run config.

    Returns one report per payload entry, in order.  An entry whose QASM
    does not parse yields a report with a single ``QA001`` error (carrying
    the parse position) instead of raising — at submit time a broken entry
    is a finding, not a crash.
    """
    target = analysis_target(payload)
    reports: List[AnalysisReport] = []
    for i, entry in enumerate(payload.circuits):
        name = entry.get("name", f"experiment-{i}")
        try:
            circuit = from_qasm(entry["qasm"], name=name)
        except QasmError as exc:
            diagnostic = Diagnostic(
                "QA001",
                Severity.ERROR,
                f"entry {name!r} failed to parse: {exc}",
                source="validation",
            )
            reports.append(AnalysisReport(name, [diagnostic]))
            continue
        reports.append(analyze(circuit, target))
    return reports


def serialize_reports(reports: List[AnalysisReport]) -> str:
    """The JSON artifact stored in the job record's ``diagnostics`` column."""
    import json

    return json.dumps(
        {
            "version": DIAGNOSTICS_ARTIFACT_VERSION,
            "reports": [report.to_dict() for report in reports],
        }
    )


def submit_payload(
    store: JobStore,
    payload: BatchPayload,
    max_attempts: int = 3,
    not_before: float = 0.0,
    reports: Optional[List[AnalysisReport]] = None,
    validate: bool = True,
) -> Tuple[str, List[AnalysisReport], bool]:
    """Validate and submit *payload*; returns ``(job_id, reports, rejected)``.

    With *validate* (the default) the payload is analyzed first — callers
    that already ran :func:`validate_payload` (the CLI does, to report spans
    against the original files) pass their *reports* in instead of paying
    for a second analysis.  Error severity inserts the job directly as
    ``FAILED`` with the formatted findings as its error artifact, so it is
    rejected before any worker can claim it; otherwise the job queues
    normally.  Either way the serialized reports are persisted on the row.
    """
    if validate and reports is None:
        reports = validate_payload(payload)
    diagnostics_json = None if reports is None else serialize_reports(reports)
    rejected_error = None
    if reports is not None:
        error_lines = [d.format() for report in reports for d in report.errors]
        if error_lines:
            rejected_error = "rejected at submit time by static analysis:\n" + "\n".join(
                error_lines
            )
    job_id = store.submit(
        payload.to_json(),
        max_attempts=max_attempts,
        not_before=not_before,
        diagnostics=diagnostics_json,
        rejected_error=rejected_error,
    )
    return job_id, list(reports or []), rejected_error is not None
