"""Compiled-circuit cache: repeat traffic skips the compile pipeline.

The service's expected traffic shape is many users submitting the *same*
circuits (textbook algorithms, benchmark corpora), so every worker compiles
through this cache.  Entries are keyed by a SHA-256 over
``(submitted circuit QASM, canonical backend name, noise config, active
array-ops backend)`` -- the exact inputs the compile pipeline depends on --
and live in two layers:

* a **persistent layer** (the ``compiled_circuits`` table of the
  :class:`~repro.qsim.service.store.JobStore`) holding the compiled
  circuit *as OpenQASM text*, shared by every worker on the database and
  surviving restarts;
* a **per-process memory layer** (bounded LRU) holding the ready-to-run
  :class:`~repro.qsim.circuit.QuantumCircuit` object -- including the
  fused :class:`~repro.qsim.instruction.UnitaryGate` blocks that have no
  QASM form -- so a warm worker skips even the parse.

Bit-equality across hit and miss paths is by construction: a **miss**
compiles (parse, peephole at optimization level 1), writes the compiled
QASM to the persistent layer, then *re-parses its own stored text* and
executes that.  A later **disk hit** parses the identical text, so both
paths run a float-for-float identical circuit; a **memory hit** reuses the
very object a previous parse produced.  Noisy payloads are deliberately
*not* optimized (noise is defined per gate -- dropping a cancelling gate
pair would change the channel strength), so their cached text is the
submitted QASM itself and the cache only saves the parse.

A corrupted persistent entry (truncated file, hand-edited row) is detected
by the re-parse, deleted, and transparently recompiled -- counted in the
per-job ``corrupt`` statistic rather than failing the job.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Dict, Tuple

from .. import telemetry
from ..circuit import QuantumCircuit
from ..exceptions import QasmError
from ..fusion import fuse_gates
from ..ops import active_ops_name
from ..qasm import from_qasm, to_qasm
from ..simulator import SIMULATOR_MAX_FUSED_QUBITS
from ..transpiler import transpile
from .payload import BatchPayload
from .store import JobStore

__all__ = ["CircuitCache"]

#: default bound on the per-process memory layer
DEFAULT_MEMORY_ENTRIES = 256


class CircuitCache:
    """Two-layer compile cache bound to one :class:`JobStore`."""

    def __init__(self, store: JobStore, max_memory_entries: int = DEFAULT_MEMORY_ENTRIES):
        self.store = store
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[str, QuantumCircuit]" = OrderedDict()

    @staticmethod
    def key(qasm: str, backend_name: str, noise_tag: str) -> str:
        """SHA-256 cache key over everything the compile depends on.

        The active array-ops backend (:func:`repro.qsim.ops.active_ops_name`)
        is part of the key: an accelerated ops module may fuse or order
        floating-point arithmetic differently, so its compiled artifacts must
        never be served to a worker running a different backend.
        """
        digest = hashlib.sha256()
        for part in (backend_name.lower(), noise_tag, active_ops_name(), qasm):
            digest.update(part.encode("utf-8"))
            digest.update(b"\x00")
        return digest.hexdigest()

    # -- compile pipeline --------------------------------------------------------

    @staticmethod
    def _compile_text(qasm: str, noisy: bool) -> str:
        """Submitted QASM -> compiled QASM (the persistent-layer value)."""
        if noisy:
            # per-gate noise semantics forbid any gate-count-changing pass
            return qasm
        circuit = from_qasm(qasm)
        return to_qasm(transpile(circuit, optimization_level=1))

    @staticmethod
    def _finalize(circuit: QuantumCircuit, fuse: bool) -> QuantumCircuit:
        """Compiled circuit -> ready-to-run object (fusion for dense engines)."""
        if fuse and circuit.num_qubits >= 1 and len(circuit.data) >= 2:
            return fuse_gates(circuit, SIMULATOR_MAX_FUSED_QUBITS)
        return circuit

    def _remember(self, cache_key: str, circuit: QuantumCircuit) -> None:
        self._memory[cache_key] = circuit
        self._memory.move_to_end(cache_key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    def compiled(
        self,
        qasm: str,
        backend_name: str,
        noise_tag: str,
        fuse: bool,
    ) -> Tuple[QuantumCircuit, str]:
        """The ready-to-run circuit for *qasm*, plus how it was obtained.

        Returns ``(circuit, kind)`` with *kind* one of ``"memory_hit"``,
        ``"disk_hit"``, ``"miss"`` or ``"corrupt"`` (a persistent entry
        that failed to re-parse and was recompiled).  The returned object
        is shared between callers -- copy before mutating.
        """
        noisy = noise_tag != "noiseless"
        with telemetry.span("cache.lookup", backend=backend_name) as sp:
            circuit, kind = self._compiled_inner(qasm, backend_name, noise_tag, fuse, noisy)
        sp.tag(kind=kind)
        if telemetry.enabled():
            # process-wide twins of the per-job stats dict: the service-level
            # hit-rate without reading every job artifact back
            if kind == "memory_hit":
                telemetry.counter("cache.memory_hits").inc()
            elif kind == "disk_hit":
                telemetry.counter("cache.disk_hits").inc()
            else:
                telemetry.counter("cache.misses").inc()
                if kind == "corrupt":
                    telemetry.counter("cache.corrupt").inc()
        return circuit, kind

    def _compiled_inner(
        self,
        qasm: str,
        backend_name: str,
        noise_tag: str,
        fuse: bool,
        noisy: bool,
    ) -> Tuple[QuantumCircuit, str]:
        cache_key = self.key(qasm, backend_name, noise_tag)
        cached = self._memory.get(cache_key)
        if cached is not None:
            self._memory.move_to_end(cache_key)
            return cached, "memory_hit"

        kind = "miss"
        compiled_text = self.store.cache_get(cache_key)
        if compiled_text is not None:
            try:
                with telemetry.span("cache.parse"):
                    circuit = self._finalize(from_qasm(compiled_text), fuse)
                self._remember(cache_key, circuit)
                return circuit, "disk_hit"
            except QasmError:
                # corrupted persistent entry: drop it and recompile below
                self.store.cache_delete(cache_key)
                kind = "corrupt"

        with telemetry.span("cache.compile", noisy=noisy):
            compiled_text = self._compile_text(qasm, noisy)
            self.store.cache_put(cache_key, backend_name.lower(), noise_tag, compiled_text)
            # execute what the store holds, not the in-flight object: a future
            # disk hit then re-parses the identical text, so hit and miss paths
            # run float-for-float identical circuits
            circuit = self._finalize(from_qasm(compiled_text), fuse)
        self._remember(cache_key, circuit)
        return circuit, kind

    def compile_batch(
        self,
        payload: BatchPayload,
        backend_name: str,
        fuse: bool,
    ) -> Tuple[list, Dict[str, int]]:
        """Compile every experiment of *payload* through the cache.

        Returns the ready-to-run circuits (named after their payload
        entries) and the hit/miss statistics that the worker exposes in the
        job's result metadata.
        """
        noise_tag = payload.noise_tag()
        stats = {"hits": 0, "memory_hits": 0, "disk_hits": 0, "misses": 0, "corrupt": 0}
        circuits = []
        with telemetry.span("cache.compile_batch", circuits=len(payload.circuits)):
            for index, entry in enumerate(payload.circuits):
                circuit, kind = self.compiled(entry["qasm"], backend_name, noise_tag, fuse)
                if kind == "memory_hit":
                    stats["memory_hits"] += 1
                elif kind == "disk_hit":
                    stats["disk_hits"] += 1
                else:
                    stats["misses"] += 1
                    if kind == "corrupt":
                        stats["corrupt"] += 1
                # the cached object is shared across jobs; run a cheap copy so
                # per-entry names never leak between payloads
                circuits.append(circuit.copy(name=entry.get("name", f"experiment-{index}")))
        stats["hits"] = stats["memory_hits"] + stats["disk_hits"]
        return circuits, stats
