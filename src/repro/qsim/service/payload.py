"""Qobj-style batch payload: many circuits + shared run config, as text.

A submission to the execution service is one :class:`BatchPayload` -- the
shape qiskit's qobj pioneered: a list of experiments (circuits) that share
one run configuration (shots, seed, backend, noise channel).  Payloads are
serialized for the job store via the existing OpenQASM 2.0 round-trip
(:func:`repro.qsim.qasm.to_qasm` / :func:`~repro.qsim.qasm.from_qasm`), so
the database only ever holds JSON-wrapped text: durable across interpreter
versions, inspectable with any sqlite client, and never a pickle.

Circuits that cannot be expressed in OpenQASM 2.0 (``initialize``-based
states) are rejected at *submission* time with the exporter's
:class:`~repro.qsim.exceptions.CircuitError` -- a malformed payload never
reaches the queue.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..circuit import QuantumCircuit
from ..qasm import from_qasm, to_qasm
from .store import ServiceError

__all__ = ["BatchPayload", "PAYLOAD_VERSION"]

#: bumped whenever the JSON shape changes incompatibly
PAYLOAD_VERSION = 1


@dataclass
class BatchPayload:
    """One service submission: named QASM circuits plus shared run config.

    Attributes:
        circuits: ``[{"name": ..., "qasm": ...}, ...]`` experiment entries.
        shots: shots per circuit.
        seed: base seed; experiment ``i`` runs with ``seed + i`` (the
            backend API's batch semantics), making a re-run after a worker
            crash bit-identical to an uninterrupted one.  ``None`` runs
            unseeded (results are then not reproducible across attempts).
        backend: registry name of the execution backend.
        noise: ``{"p": float, "channel": str}`` or ``None``; mapped onto
            the backend via
            :func:`repro.qsim.backends.build_noisy_backend`, exactly like
            the CLI's ``--noise``/``--noise-model`` flags.
        memory: also record per-shot bitstrings.
        metadata: caller extras, carried through to the job artifacts.
    """

    circuits: List[Dict[str, str]]
    shots: int = 1024
    seed: Optional[int] = None
    backend: str = "statevector"
    noise: Optional[Dict[str, Any]] = None
    memory: bool = False
    metadata: Dict[str, Any] = field(default_factory=dict)

    # -- construction ------------------------------------------------------------

    @classmethod
    def from_circuits(
        cls,
        circuits: Sequence[QuantumCircuit],
        shots: int = 1024,
        seed: Optional[int] = None,
        backend: str = "statevector",
        noise_p: Optional[float] = None,
        noise_channel: str = "depolarizing",
        memory: bool = False,
        measure_all: bool = True,
        metadata: Optional[Dict[str, Any]] = None,
    ) -> "BatchPayload":
        """Build a payload from live circuits, exporting each to QASM.

        *measure_all* mirrors the CLI's treatment of measurement-free
        circuits: they get a final measure-all so the job produces counts
        instead of an empty histogram.
        """
        if not circuits:
            raise ServiceError("a batch payload needs at least one circuit")
        if shots <= 0:
            raise ServiceError("shots must be positive")
        entries = []
        for circuit in circuits:
            if not isinstance(circuit, QuantumCircuit):
                raise ServiceError(
                    f"cannot submit {type(circuit).__name__} (expected QuantumCircuit)"
                )
            if measure_all and circuit.num_qubits and not circuit.has_measurements():
                circuit = circuit.copy()
                circuit.measure_all()
            entries.append({"name": circuit.name, "qasm": to_qasm(circuit)})
        noise = None
        if noise_p is not None:
            noise = {"p": float(noise_p), "channel": noise_channel}
        return cls(
            circuits=entries,
            shots=shots,
            seed=seed,
            backend=backend,
            noise=noise,
            memory=memory,
            metadata=dict(metadata or {}),
        )

    # -- (de)serialization -------------------------------------------------------

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": PAYLOAD_VERSION,
                "circuits": self.circuits,
                "shots": self.shots,
                "seed": self.seed,
                "backend": self.backend,
                "noise": self.noise,
                "memory": self.memory,
                "metadata": self.metadata,
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "BatchPayload":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ServiceError(f"malformed payload JSON: {exc}") from exc
        if not isinstance(data, dict) or "circuits" not in data:
            raise ServiceError("malformed payload: not a payload object")
        version = data.get("version")
        if version != PAYLOAD_VERSION:
            raise ServiceError(
                f"unsupported payload version {version!r} (this build speaks "
                f"{PAYLOAD_VERSION})"
            )
        return cls(
            circuits=list(data["circuits"]),
            shots=int(data.get("shots", 1024)),
            seed=data.get("seed"),
            backend=str(data.get("backend", "statevector")),
            noise=data.get("noise"),
            memory=bool(data.get("memory", False)),
            metadata=dict(data.get("metadata", {})),
        )

    # -- consumption -------------------------------------------------------------

    def parse_circuits(self) -> List[QuantumCircuit]:
        """Parse every experiment's QASM back into a live circuit."""
        return [
            from_qasm(entry["qasm"], name=entry.get("name", f"experiment-{i}"))
            for i, entry in enumerate(self.circuits)
        ]

    def noise_tag(self) -> str:
        """Canonical string form of the noise config (part of cache keys)."""
        if self.noise is None:
            return "noiseless"
        return f"{self.noise.get('channel', 'depolarizing')}:{self.noise.get('p')!r}"

    def __len__(self) -> int:
        return len(self.circuits)
