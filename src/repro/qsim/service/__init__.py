"""Durable execution service: job queue, worker fleet, compiled-circuit cache.

:mod:`repro.qsim.backends` made ``Backend.run`` a uniform *library* call;
this package promotes it to a *service*: circuits are submitted as durable
jobs into a sqlite-backed queue (:mod:`~repro.qsim.service.store`), worker
processes drain the queue with heartbeats, lease timeouts and
retry-with-backoff (:mod:`~repro.qsim.service.worker`), and a
compiled-circuit cache keyed by (circuit QASM, backend, noise config) lets
repeat traffic skip the transpile/fusion pipeline entirely
(:mod:`~repro.qsim.service.cache`).  One submission carries many circuits
plus shared run config as a qobj-style batch payload
(:mod:`~repro.qsim.service.payload`), serialized through the OpenQASM 2.0
round-trip so the store only ever holds text -- never pickles.  Every
submission is statically analyzed first (:mod:`~repro.qsim.service.validation`):
the per-circuit diagnostic reports are persisted as a job artifact and
error-severity payloads are rejected before any worker can claim them.

The CLI exposes the whole lifecycle as ``qutes submit / status / result /
cancel / worker / queue-stats``; see ``docs/service.md`` for the guide and
``tests/qsim/service/`` for the crash/concurrency harness that proves the
semantics.
"""

from .cache import CircuitCache
from .payload import BatchPayload
from .store import JobRecord, JobStore, ServiceError
from .validation import submit_payload, validate_payload
from .worker import WorkerFleet, configure_logging, execute_payload, worker_loop

__all__ = [
    "BatchPayload",
    "CircuitCache",
    "JobRecord",
    "JobStore",
    "ServiceError",
    "WorkerFleet",
    "configure_logging",
    "execute_payload",
    "submit_payload",
    "validate_payload",
    "worker_loop",
]
