"""Worker fleet: processes that drain the job queue, crash-safely.

A worker is a loop over the :class:`~repro.qsim.service.store.JobStore`:
reclaim expired leases, atomically claim the oldest runnable job, execute
its :class:`~repro.qsim.service.payload.BatchPayload` through the
compiled-circuit cache, and record the outcome.  Everything that makes the
loop safe against crashes and races lives in the store's guarded
transitions; the worker adds the *liveness* half:

* a **heartbeat thread** (own database connection) extends the claimed
  job's lease every ``lease_timeout / 4`` seconds, so a healthy worker can
  run a job far longer than one lease period;
* a worker that dies -- SIGKILL included -- simply stops heartbeating; its
  lease expires and any surviving (or future) worker's
  ``reclaim_expired`` returns the job to the queue, where it is re-run.
  With a seeded payload the re-run is bit-identical to an uninterrupted
  one, because results are only ever written on completion;
* a job that *raises* is retried with exponential backoff
  (``retry_delay * 2**(attempt-1)``) until its attempt budget is spent,
  then parked ``FAILED`` with the formatted traceback as artifact.

:class:`WorkerFleet` spawns N such loops as separate OS processes (real
parallelism, real crash isolation -- the test harness SIGKILLs them).
``python -m repro.qsim.service.worker --db ...`` runs a fleet from the
shell; the ``qutes worker`` CLI verb wraps the same entry point.
"""

from __future__ import annotations

import argparse
import logging
import multiprocessing
import os
import socket
import threading
import time
import traceback
import uuid
from typing import Any, Dict, List, Optional, Tuple

from .. import telemetry
from .cache import CircuitCache
from .payload import BatchPayload
from .store import JobRecord, JobStore

__all__ = ["execute_payload", "worker_loop", "WorkerFleet", "configure_logging", "logger"]

#: every worker/service module logs through this logger; handlers and level
#: are the *application's* choice (the CLI's --verbose/--quiet flags call
#: :func:`configure_logging`) -- the library itself never calls basicConfig
logger = logging.getLogger("repro.qsim.service")

#: a worker must heartbeat within this window or its job is reclaimed
DEFAULT_LEASE_TIMEOUT = 15.0
#: idle sleep between claim attempts when the queue is empty
DEFAULT_POLL_INTERVAL = 0.2
#: base of the exponential retry backoff
DEFAULT_RETRY_DELAY = 0.5


def configure_logging(verbosity: int = 0) -> None:
    """Wire the service logger to stderr at a verbosity chosen by the CLI.

    ``verbosity`` is the net of ``--verbose``/``--quiet`` flags: 0 logs
    lifecycle events (INFO), positive adds per-claim detail (DEBUG),
    negative keeps only problems (WARNING).  Uses ``logging.basicConfig``,
    so an application that already configured handlers wins.
    """
    if verbosity > 0:
        level = logging.DEBUG
    elif verbosity < 0:
        level = logging.WARNING
    else:
        level = logging.INFO
    logging.basicConfig(format="%(asctime)s %(levelname)s %(name)s %(message)s")
    logger.setLevel(level)


def _new_worker_id() -> str:
    return f"{socket.gethostname()}-{os.getpid()}-{uuid.uuid4().hex[:6]}"


def _build_backend(payload: BatchPayload) -> Tuple[Any, bool]:
    """The backend a payload runs on, plus whether circuits are pre-fused.

    Noiseless statevector payloads get ``fusion=False`` engines because the
    cache already delivers fused circuits (fusing twice would waste the
    cache's work); every other engine takes its registry default.  Noisy
    payloads go through :func:`build_noisy_backend`, exactly like the CLI's
    ``--noise`` flag.
    """
    from ..backends import build_noisy_backend, get_backend
    from ..backends.engines import StatevectorBackend

    if payload.noise is not None:
        backend = build_noisy_backend(
            payload.backend,
            float(payload.noise["p"]),
            payload.noise.get("channel", "depolarizing"),
        )
        return backend, False
    backend = get_backend(payload.backend)
    if isinstance(backend, StatevectorBackend):
        return get_backend(payload.backend, fusion=False), True
    return backend, False


def execute_payload(payload: BatchPayload, cache: CircuitCache) -> Dict[str, Any]:
    """Run one payload through the cache and backend; return ``Result.to_dict()``.

    The cache's hit/miss statistics are attached under
    ``metadata["cache"]`` so every job artifact records whether it paid the
    compile pipeline.  Raises whatever the compile or execution raises --
    the caller decides between retry and ``FAILED``.
    """
    backend, fuse = _build_backend(payload)
    circuits, cache_stats = cache.compile_batch(payload, backend.name, fuse=fuse)
    job = backend.run(
        circuits, shots=payload.shots, seed=payload.seed, memory=payload.memory
    )
    result_dict = job.result().to_dict()
    result_dict["metadata"]["cache"] = cache_stats
    result_dict["metadata"]["payload_metadata"] = payload.metadata
    return result_dict


class _Heartbeat(threading.Thread):
    """Extends one claimed job's lease until stopped (own DB connection)."""

    def __init__(self, db_path: str, job_id: str, worker_id: str, lease_timeout: float):
        super().__init__(daemon=True, name=f"heartbeat-{job_id[:12]}")
        self.db_path = db_path
        self.job_id = job_id
        self.worker_id = worker_id
        self.lease_timeout = lease_timeout
        self.interval = max(0.05, lease_timeout / 4.0)
        self.lost = False
        self._stop_event = threading.Event()

    def run(self) -> None:
        store = JobStore(self.db_path)
        try:
            while not self._stop_event.wait(self.interval):
                if not store.heartbeat(self.job_id, self.worker_id, self.lease_timeout):
                    # the job is no longer ours (cancelled or reclaimed)
                    self.lost = True
                    return
        finally:
            store.close()

    def stop(self) -> None:
        self._stop_event.set()
        self.join(timeout=5.0)


#: shape version of the per-job telemetry artifact
TELEMETRY_ARTIFACT_VERSION = 1


def _process_one(
    store: JobStore,
    cache: CircuitCache,
    record: JobRecord,
    worker_id: str,
    db_path: str,
    lease_timeout: float,
    retry_delay: float,
    claim_wall_s: float = 0.0,
    claim_cpu_s: float = 0.0,
) -> None:
    heartbeat = _Heartbeat(db_path, record.job_id, worker_id, lease_timeout)
    heartbeat.start()
    # each job gets a fresh trace: drop roots nobody drained plus any span
    # stack a previous exception may have stranded
    telemetry.clear_spans()
    metrics_before = telemetry.snapshot() if telemetry.enabled() else None
    job_span = None
    try:
        with telemetry.span(
            "job", job_id=record.job_id, worker=worker_id, attempt=record.attempts
        ) as job_span:
            # the claim ran before we knew there was a job to trace; graft
            # its hand-measured cost in so the tree accounts for it
            telemetry.record("claim", claim_wall_s, claim_cpu_s)
            with telemetry.span("payload.parse"):
                payload = BatchPayload.from_json(record.payload)
            result_dict = execute_payload(payload, cache)
            with telemetry.span("finalize"):
                result_dict["metadata"].update(
                    job_id=record.job_id, worker_id=worker_id, attempt=record.attempts
                )
    except Exception:
        heartbeat.stop()
        backoff = retry_delay * (2 ** max(0, record.attempts - 1))
        state = store.fail(record.job_id, worker_id, traceback.format_exc(), backoff)
        if state == "FAILED":
            logger.error(
                "event=failed job=%s worker=%s attempt=%d", record.job_id, worker_id,
                record.attempts, exc_info=True,
            )
        else:
            logger.warning(
                "event=retry job=%s worker=%s attempt=%d backoff=%.2fs state=%s",
                record.job_id, worker_id, record.attempts, backoff, state,
            )
        return
    heartbeat.stop()
    artifact = None
    tree = {} if job_span is None else job_span.to_dict()
    if tree:
        telemetry.drain_spans()  # the root we just serialized
        artifact = {
            "version": TELEMETRY_ARTIFACT_VERSION,
            "duration_s": claim_wall_s + tree["wall_s"],
            "trace": tree,
            "metrics": telemetry.snapshot_delta(metrics_before or {}, telemetry.snapshot()),
        }
    # the guarded transition silently drops the result if a cancel or lease
    # reclaim won the race -- exactly what a durable queue must do
    if store.finish(record.job_id, worker_id, result_dict, telemetry=artifact):
        logger.info(
            "event=done job=%s worker=%s attempt=%d wall=%.3fs",
            record.job_id, worker_id, record.attempts,
            claim_wall_s + (tree.get("wall_s", 0.0) if tree else 0.0),
        )
    else:
        logger.warning(
            "event=dropped job=%s worker=%s reason=lost-ownership", record.job_id, worker_id
        )


def worker_loop(
    db_path: str,
    worker_id: Optional[str] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    poll_interval: float = DEFAULT_POLL_INTERVAL,
    retry_delay: float = DEFAULT_RETRY_DELAY,
    burst: bool = False,
    max_jobs: Optional[int] = None,
    cache_memory_entries: int = 256,
) -> int:
    """Drain jobs from *db_path* until stopped; returns jobs processed.

    ``burst=True`` exits as soon as a claim attempt finds the queue empty
    (the mode CI and the benchmark use); otherwise the loop polls forever
    and is meant to be killed.  ``max_jobs`` bounds the number of processed
    jobs either way.
    """
    worker_id = worker_id or _new_worker_id()
    store = JobStore(db_path)
    cache = CircuitCache(store, max_memory_entries=cache_memory_entries)
    processed = 0
    logger.info("event=worker-start worker=%s db=%s burst=%s", worker_id, db_path, burst)
    try:
        while True:
            reclaimed = store.reclaim_expired(retry_delay)
            if reclaimed:
                logger.warning("event=reclaimed worker=%s jobs=%d", worker_id, reclaimed)
            claim_wall0, claim_cpu0 = time.perf_counter(), time.process_time()
            record = store.claim(worker_id, lease_timeout)
            claim_wall = time.perf_counter() - claim_wall0
            claim_cpu = time.process_time() - claim_cpu0
            if record is None:
                if burst:
                    break
                time.sleep(poll_interval)
                continue
            logger.debug(
                "event=claim job=%s worker=%s attempt=%d",
                record.job_id, worker_id, record.attempts,
            )
            _process_one(
                store, cache, record, worker_id, db_path, lease_timeout, retry_delay,
                claim_wall_s=claim_wall, claim_cpu_s=claim_cpu,
            )
            processed += 1
            if max_jobs is not None and processed >= max_jobs:
                break
    finally:
        store.close()
        logger.info("event=worker-exit worker=%s processed=%d", worker_id, processed)
    return processed


def _fleet_entry(db_path: str, worker_id: str, kwargs: Dict[str, Any]) -> None:
    worker_loop(db_path, worker_id=worker_id, **kwargs)


class WorkerFleet:
    """N worker processes over one database, as a context manager.

    Keyword arguments besides *workers* are forwarded to
    :func:`worker_loop`.  Processes are real OS processes (fork when
    available), so the crash-recovery tests can SIGKILL one and watch the
    survivors reclaim its job.
    """

    def __init__(self, db_path: str, workers: int = 2, **worker_kwargs: Any):
        if workers < 1:
            raise ValueError("a fleet needs at least one worker")
        self.db_path = os.fspath(db_path)
        self.worker_kwargs = worker_kwargs
        try:
            context = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            context = multiprocessing.get_context()
        self.processes: List[multiprocessing.Process] = [
            context.Process(
                target=_fleet_entry,
                args=(self.db_path, f"fleet-{index}-{uuid.uuid4().hex[:6]}", worker_kwargs),
                name=f"qsim-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]

    def start(self) -> "WorkerFleet":
        for process in self.processes:
            process.start()
        return self

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for every worker to exit; ``True`` if all did in time."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for process in self.processes:
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            process.join(remaining)
        return all(not process.is_alive() for process in self.processes)

    def terminate(self) -> None:
        for process in self.processes:
            if process.is_alive():
                process.terminate()
        self.join(timeout=5.0)

    @property
    def pids(self) -> List[Optional[int]]:
        return [process.pid for process in self.processes]

    def alive(self) -> int:
        return sum(process.is_alive() for process in self.processes)

    def __enter__(self) -> "WorkerFleet":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.terminate()


def main(argv: Optional[List[str]] = None) -> int:
    """``python -m repro.qsim.service.worker``: run a fleet from the shell."""
    parser = argparse.ArgumentParser(
        prog="repro.qsim.service.worker",
        description="Run execution-service workers against a job database.",
    )
    parser.add_argument("--db", required=True, help="path to the service database")
    parser.add_argument("--workers", type=int, default=1, help="worker processes")
    parser.add_argument(
        "--burst", action="store_true", help="exit when the queue is empty"
    )
    parser.add_argument("--max-jobs", type=int, default=None, help="jobs per worker cap")
    parser.add_argument(
        "--lease", type=float, default=DEFAULT_LEASE_TIMEOUT, help="lease timeout (s)"
    )
    parser.add_argument(
        "--poll", type=float, default=DEFAULT_POLL_INTERVAL, help="idle poll interval (s)"
    )
    parser.add_argument(
        "--retry-delay",
        type=float,
        default=DEFAULT_RETRY_DELAY,
        help="base of the exponential retry backoff (s)",
    )
    parser.add_argument(
        "-v", "--verbose", action="count", default=0, help="log per-claim detail (DEBUG)"
    )
    parser.add_argument(
        "-q", "--quiet", action="count", default=0, help="log only problems (WARNING)"
    )
    args = parser.parse_args(argv)
    configure_logging(args.verbose - args.quiet)
    kwargs = dict(
        lease_timeout=args.lease,
        poll_interval=args.poll,
        retry_delay=args.retry_delay,
        burst=args.burst,
        max_jobs=args.max_jobs,
    )
    if args.workers == 1:
        worker_loop(args.db, **kwargs)
        return 0
    fleet = WorkerFleet(args.db, workers=args.workers, **kwargs)
    fleet.start()
    try:
        fleet.join()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        fleet.terminate()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
