"""The ``TypeCastingHandler``: classical <-> quantum conversions.

Exactly as described in the paper, this component owns the two implicit
conversion directions of the language:

* **promotion** -- when a classical value is assigned to (or combined with) a
  quantum variable, the value is encoded into a freshly allocated quantum
  register (basis-state encoding for single values, amplitude encoding for
  superposition literals);
* **measurement** -- when a quantum value reaches a classical context (a
  condition, a comparison, a ``print``, a classical variable), the register
  is measured automatically and the collapsed value is used.

It also hosts the small classical coercion matrix (bool -> int -> float).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

from ..algorithms.superposition import amplitudes_for_values
from .circuit_handler import QuantumCircuitHandler
from .errors import QutesRuntimeError, QutesTypeError
from .types import QutesType, TypeKind
from .values import QuantumVariable, qubits_needed_for_int, type_of_python_value

__all__ = ["TypeCastingHandler"]


class TypeCastingHandler:
    """Implements implicit conversions between the classical and quantum domains."""

    def __init__(self, handler: QuantumCircuitHandler):
        self.handler = handler

    # -- classical -> quantum (promotion) -------------------------------------------

    def encode_bool(self, value: bool, name: str = "qb") -> QuantumVariable:
        """Encode a classical bool into a fresh single-qubit register."""
        qubits = self.handler.allocate_register(name, 1)
        if value:
            self.handler.initialize_basis(1, qubits)
        return QuantumVariable(name=name, type=QutesType.qubit(), qubits=qubits,
                               classical_hint=int(bool(value)))

    def encode_int(self, value: int, name: str = "qi", num_qubits: Optional[int] = None) -> QuantumVariable:
        """Encode a classical non-negative int into a fresh ``quint`` register."""
        if value < 0:
            raise QutesRuntimeError("quantum integers must be non-negative")
        size = num_qubits if num_qubits is not None else qubits_needed_for_int(value)
        if value >= 2**size:
            raise QutesRuntimeError(f"value {value} does not fit in {size} qubits")
        qubits = self.handler.allocate_register(name, size)
        self.handler.initialize_basis(value, qubits)
        return QuantumVariable(name=name, type=QutesType.quint(), qubits=qubits,
                               classical_hint=value)

    def encode_bitstring(self, value: str, name: str = "qs") -> QuantumVariable:
        """Encode a classical bitstring into a fresh ``qustring`` register.

        Character ``i`` of the string is stored in qubit ``i`` of the register.
        """
        if not value or any(ch not in "01" for ch in value):
            raise QutesTypeError(
                "qustring values must be non-empty bitstrings (current hardware "
                "constraint, as in the paper)"
            )
        qubits = self.handler.allocate_register(name, len(value))
        as_int = sum((1 << i) for i, ch in enumerate(value) if ch == "1")
        self.handler.initialize_basis(as_int, qubits)
        return QuantumVariable(name=name, type=QutesType.qustring(), qubits=qubits,
                               classical_hint=as_int)

    def encode_superposition(self, values: Sequence[int], name: str = "qsup",
                             num_qubits: Optional[int] = None) -> QuantumVariable:
        """Encode a list of ints as an equal superposition ``quint``."""
        values = [self.to_int(v) for v in values]
        if not values:
            raise QutesTypeError("superposition literals need at least one value")
        if any(v < 0 for v in values):
            raise QutesRuntimeError("quantum integers must be non-negative")
        size = num_qubits if num_qubits is not None else max(qubits_needed_for_int(max(values)), 1)
        qubits = self.handler.allocate_register(name, size)
        amplitudes = amplitudes_for_values(values, size)
        self.handler.initialize(amplitudes, qubits)
        hint = values[0] if len(set(values)) == 1 else None
        return QuantumVariable(name=name, type=QutesType.quint(), qubits=qubits,
                               classical_hint=hint)

    def encode_ket(self, state: str, name: str = "qk") -> QuantumVariable:
        """Encode a ket literal (``|0>``, ``|1>``, ``|+>``, ``|->``) into a qubit."""
        qubits = self.handler.allocate_register(name, 1)
        hint: Optional[int] = None
        if state == "0":
            hint = 0
        elif state == "1":
            self.handler.apply_gate("x", qubits)
            hint = 1
        elif state == "+":
            self.handler.apply_gate("h", qubits)
        elif state == "-":
            self.handler.apply_gate("x", qubits)
            self.handler.apply_gate("h", qubits)
        else:
            raise QutesTypeError(f"unknown ket literal |{state}>")
        return QuantumVariable(name=name, type=QutesType.qubit(), qubits=qubits,
                               classical_hint=hint)

    def promote_to_quantum(self, value, target: QutesType, name: str = "q") -> QuantumVariable:
        """Promote a classical *value* to the quantum *target* type.

        ``target.size`` (from a ``quint[4]``-style declaration) pins the
        register width; without it the width is derived from the value.
        """
        if isinstance(value, QuantumVariable):
            if value.type.kind == target.kind or (
                target.kind is TypeKind.QUINT and value.type.kind is TypeKind.QUBIT
            ):
                if target.size is not None and target.size != value.size:
                    if target.size < value.size:
                        raise QutesTypeError(
                            f"cannot narrow a {value.size}-qubit register to {target}"
                        )
                    # widen: append |0> qubits as the new most-significant bits
                    extra = self.handler.allocate_register(f"{name}_pad", target.size - value.size)
                    value.qubits = list(value.qubits) + extra
                return value
            if target.kind is TypeKind.QUBIT and value.type.kind is TypeKind.QUINT and value.size == 1:
                # a one-qubit quint literal (``0q`` / ``1q``) narrows to qubit
                value.type = QutesType.qubit()
                return value
            raise QutesTypeError(f"cannot convert {value.type} to {target}")
        if target.kind is TypeKind.QUBIT:
            return self.encode_bool(self.to_bool(value), name)
        if target.kind is TypeKind.QUINT:
            if isinstance(value, list):
                return self.encode_superposition(value, name, num_qubits=target.size)
            return self.encode_int(self.to_int(value), name, num_qubits=target.size)
        if target.kind is TypeKind.QUSTRING:
            if not isinstance(value, str):
                raise QutesTypeError(f"cannot promote {type_of_python_value(value)} to qustring")
            return self.encode_bitstring(value, name)
        raise QutesTypeError(f"{target} is not a quantum type")

    # -- quantum -> classical (automatic measurement) ----------------------------------

    def measure_variable(self, variable: QuantumVariable) -> Union[bool, int, str]:
        """Measure *variable*, collapse it, and return the classical value."""
        outcome = self.handler.measure(variable.qubits, label=variable.name)
        variable.classical_hint = outcome
        return self._outcome_to_classical(variable, outcome)

    def peek_variable(self, variable: QuantumVariable, shots: int = 1024) -> dict:
        """Sampling statistics for *variable* without collapsing it."""
        raw = self.handler.sample(variable.qubits, shots=shots)
        return {self._outcome_to_classical(variable, value): count for value, count in raw.items()}

    def _outcome_to_classical(self, variable: QuantumVariable, outcome: int):
        kind = variable.type.kind
        if kind is TypeKind.QUBIT:
            return bool(outcome)
        if kind is TypeKind.QUINT:
            return int(outcome)
        if kind is TypeKind.QUSTRING:
            return "".join(
                "1" if (outcome >> i) & 1 else "0" for i in range(variable.size)
            )
        raise QutesTypeError(f"cannot measure a value of type {variable.type}")

    # -- classical coercions --------------------------------------------------------------

    def to_bool(self, value) -> bool:
        """Coerce *value* to bool, measuring quantum operands automatically."""
        if isinstance(value, QuantumVariable):
            measured = self.measure_variable(value)
            return bool(int(measured, 2)) if isinstance(measured, str) else bool(measured)
        if isinstance(value, (bool, int, float)):
            return bool(value)
        if isinstance(value, str):
            return len(value) > 0
        if isinstance(value, list):
            return len(value) > 0
        raise QutesTypeError(f"cannot interpret {value!r} as a boolean")

    def to_int(self, value) -> int:
        """Coerce *value* to int, measuring quantum operands automatically."""
        if isinstance(value, QuantumVariable):
            measured = self.measure_variable(value)
            if isinstance(measured, str):
                return int(measured, 2) if measured else 0
            return int(measured)
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            return int(value)
        raise QutesTypeError(f"cannot convert {type_of_python_value(value)} to int")

    def to_float(self, value) -> float:
        """Coerce *value* to float, measuring quantum operands automatically."""
        if isinstance(value, QuantumVariable):
            return float(self.to_int(value))
        if isinstance(value, (bool, int, float)):
            return float(value)
        raise QutesTypeError(f"cannot convert {type_of_python_value(value)} to float")

    def to_classical(self, value):
        """Collapse *value* (and array elements) into plain classical data."""
        if isinstance(value, QuantumVariable):
            return self.measure_variable(value)
        if isinstance(value, list):
            return [self.to_classical(v) for v in value]
        return value

    # -- declaration-time conversion ---------------------------------------------------------

    def coerce_for_declaration(self, value, target: QutesType, name: str):
        """Convert *value* so it can be stored in a variable of type *target*."""
        kind = target.kind
        if kind is TypeKind.ARRAY:
            if not isinstance(value, list):
                raise QutesTypeError(f"cannot initialise {target} from {type_of_python_value(value)}")
            element_type = target.element
            return [
                self.coerce_for_declaration(element, element_type, f"{name}_{i}")
                for i, element in enumerate(value)
            ]
        if target.is_quantum:
            return self.promote_to_quantum(value, target, name)
        # classical targets: quantum initialisers are measured automatically
        if isinstance(value, QuantumVariable):
            value = self.measure_variable(value)
        if kind is TypeKind.BOOL:
            return self.to_bool(value)
        if kind is TypeKind.INT:
            return self.to_int(value)
        if kind is TypeKind.FLOAT:
            return self.to_float(value)
        if kind is TypeKind.STRING:
            if not isinstance(value, str):
                raise QutesTypeError(f"cannot initialise string from {type_of_python_value(value)}")
            return value
        raise QutesTypeError(f"cannot declare a variable of type {target}")
