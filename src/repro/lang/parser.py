"""Recursive-descent parser for Qutes.

Grammar (EBNF, ``*`` = repetition, ``?`` = optional)::

    program        := statement* EOF
    statement      := varDecl | funcDecl | ifStmt | whileStmt | doWhileStmt
                    | foreachStmt | returnStmt | printStmt | barrierStmt
                    | block | exprOrAssignStmt
    varDecl        := typeName arraySuffix? IDENT ("=" expression)? ";"
    funcDecl       := "function" typeName arraySuffix? IDENT "(" params? ")" block
    params         := param ("," param)*
    param          := typeName arraySuffix? IDENT
    ifStmt         := "if" "(" expression ")" statement ("else" statement)?
    whileStmt      := "while" "(" expression ")" statement
    doWhileStmt    := "do" statement "while" "(" expression ")" ";"
    foreachStmt    := "foreach" IDENT "in" expression statement
    returnStmt     := "return" expression? ";"
    printStmt      := "print" expression ";"
    barrierStmt    := "barrier" ";"
    block          := "{" statement* "}"
    exprOrAssignStmt := expression ("=" expression)? ";"

    expression     := orExpr
    orExpr         := andExpr ("or" andExpr)*
    andExpr        := notExpr ("and" notExpr)*
    notExpr        := "not" notExpr | comparison
    comparison     := inExpr (("=="|"!="|">"|">="|"<"|"<=") inExpr)*
    inExpr         := shift ("in" shift)?
    shift          := additive (("<<"|">>") additive)*
    additive       := multiplicative (("+"|"-") multiplicative)*
    multiplicative := unary (("*"|"/"|"%") unary)*
    unary          := ("-"|"+") unary | gateExpr
    gateExpr       := GATE unary | postfix
    postfix        := primary (("[" expression "]") | ("(" args? ")"))*
    primary        := literal | IDENT | "(" expression ")" | "[" exprList? "]"

Types in declarations use ``typeName`` optionally followed by ``[]`` for
arrays (``int[] xs = [1, 2, 3];``).
"""

from __future__ import annotations

from typing import List, Optional

from . import ast_nodes as ast
from .errors import QutesSyntaxError
from .lexer import tokenize
from .tokens import GATE_KEYWORDS, TYPE_KEYWORDS, Token, TokenType
from .types import QutesType, TypeKind

__all__ = ["Parser", "parse"]

_TYPE_TOKEN_TO_TYPE = {
    TokenType.BOOL: QutesType.bool_(),
    TokenType.INT: QutesType.int_(),
    TokenType.FLOAT: QutesType.float_(),
    TokenType.STRING: QutesType.string(),
    TokenType.QUBIT: QutesType.qubit(),
    TokenType.QUINT: QutesType.quint(),
    TokenType.QUSTRING: QutesType.qustring(),
    TokenType.VOID: QutesType.void(),
}

_COMPARISON_OPS = {
    TokenType.EQUAL: "==",
    TokenType.NOT_EQUAL: "!=",
    TokenType.GREATER: ">",
    TokenType.GREATER_EQUAL: ">=",
    TokenType.LESS: "<",
    TokenType.LESS_EQUAL: "<=",
}

_GATE_TOKENS = set(GATE_KEYWORDS.values())


class Parser:
    """Turns a token stream into a :class:`~repro.lang.ast_nodes.Program`."""

    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def _check(self, *types: TokenType) -> bool:
        return self._peek().type in types

    def _advance(self) -> Token:
        token = self.tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _match(self, *types: TokenType) -> Optional[Token]:
        if self._check(*types):
            return self._advance()
        return None

    def _expect(self, token_type: TokenType, message: str) -> Token:
        if self._check(token_type):
            return self._advance()
        found = self._peek()
        raise QutesSyntaxError(
            f"{message} (found {found.lexeme!r})", found.line, found.column
        )

    def _at_end(self) -> bool:
        return self._peek().type is TokenType.EOF

    # -- entry point -------------------------------------------------------------

    def parse(self) -> ast.Program:
        statements: List[ast.Node] = []
        first_line = self._peek().line
        while not self._at_end():
            statements.append(self._statement())
        return ast.Program(statements, line=first_line)

    # -- statements ----------------------------------------------------------------

    def _statement(self) -> ast.Node:
        token = self._peek()
        if token.type is TokenType.FUNCTION:
            return self._function_declaration()
        if token.type in _TYPE_TOKEN_TO_TYPE and self._looks_like_declaration():
            return self._var_declaration()
        if token.type is TokenType.IF:
            return self._if_statement()
        if token.type is TokenType.WHILE:
            return self._while_statement()
        if token.type is TokenType.DO:
            return self._do_while_statement()
        if token.type is TokenType.FOREACH:
            return self._foreach_statement()
        if token.type is TokenType.RETURN:
            return self._return_statement()
        if token.type is TokenType.PRINT:
            return self._print_statement()
        if token.type is TokenType.BARRIER:
            self._advance()
            self._expect(TokenType.SEMICOLON, "expected ';' after 'barrier'")
            return ast.BarrierStatement(line=token.line)
        if token.type is TokenType.LBRACE:
            return self._block()
        return self._expression_statement()

    def _looks_like_declaration(self) -> bool:
        # typeName IDENT | typeName [] IDENT | typeName [ INT ] IDENT
        nxt = self._peek(1)
        if nxt.type is TokenType.IDENTIFIER:
            return True
        if nxt.type is not TokenType.LBRACKET:
            return False
        if self._peek(2).type is TokenType.RBRACKET:
            return True
        return (
            self._peek(2).type is TokenType.INT_LITERAL
            and self._peek(3).type is TokenType.RBRACKET
        )

    def _parse_type(self) -> QutesType:
        token = self._advance()
        base = _TYPE_TOKEN_TO_TYPE.get(token.type)
        if base is None:
            raise QutesSyntaxError(f"expected a type name, found {token.lexeme!r}", token.line, token.column)
        if self._check(TokenType.LBRACKET) and self._peek(1).type is TokenType.RBRACKET:
            self._advance()
            self._advance()
            return QutesType.array_of(base)
        if (
            self._check(TokenType.LBRACKET)
            and self._peek(1).type is TokenType.INT_LITERAL
            and self._peek(2).type is TokenType.RBRACKET
        ):
            self._advance()
            size_token = self._advance()
            self._advance()
            try:
                return QutesType.sized(base, size_token.literal)
            except Exception as exc:
                raise QutesSyntaxError(str(exc), size_token.line, size_token.column) from exc
        return base

    def _var_declaration(self) -> ast.Node:
        line = self._peek().line
        var_type = self._parse_type()
        if var_type.kind is TypeKind.VOID:
            raise QutesSyntaxError("variables cannot have type 'void'", line)
        name = self._expect(TokenType.IDENTIFIER, "expected a variable name").lexeme
        initializer = None
        if self._match(TokenType.ASSIGN):
            initializer = self._expression()
        self._expect(TokenType.SEMICOLON, "expected ';' after variable declaration")
        return ast.VarDeclaration(var_type, name, initializer, line=line)

    def _function_declaration(self) -> ast.Node:
        line = self._advance().line  # 'function'
        return_type = self._parse_type()
        name = self._expect(TokenType.IDENTIFIER, "expected a function name").lexeme
        self._expect(TokenType.LPAREN, "expected '(' after function name")
        parameters: List[ast.Parameter] = []
        if not self._check(TokenType.RPAREN):
            while True:
                param_line = self._peek().line
                param_type = self._parse_type()
                if param_type.kind is TypeKind.VOID:
                    raise QutesSyntaxError("parameters cannot have type 'void'", param_line)
                param_name = self._expect(TokenType.IDENTIFIER, "expected a parameter name").lexeme
                parameters.append(ast.Parameter(param_type, param_name, line=param_line))
                if not self._match(TokenType.COMMA):
                    break
        self._expect(TokenType.RPAREN, "expected ')' after parameters")
        body = self._block()
        return ast.FunctionDeclaration(return_type, name, parameters, body, line=line)

    def _block(self) -> ast.Block:
        line = self._expect(TokenType.LBRACE, "expected '{'").line
        statements: List[ast.Node] = []
        while not self._check(TokenType.RBRACE) and not self._at_end():
            statements.append(self._statement())
        self._expect(TokenType.RBRACE, "expected '}' to close block")
        return ast.Block(statements, line=line)

    def _if_statement(self) -> ast.Node:
        line = self._advance().line
        self._expect(TokenType.LPAREN, "expected '(' after 'if'")
        condition = self._expression()
        self._expect(TokenType.RPAREN, "expected ')' after if condition")
        then_branch = self._statement()
        else_branch = None
        if self._match(TokenType.ELSE):
            else_branch = self._statement()
        return ast.If(condition, then_branch, else_branch, line=line)

    def _while_statement(self) -> ast.Node:
        line = self._advance().line
        self._expect(TokenType.LPAREN, "expected '(' after 'while'")
        condition = self._expression()
        self._expect(TokenType.RPAREN, "expected ')' after while condition")
        body = self._statement()
        return ast.While(condition, body, line=line)

    def _do_while_statement(self) -> ast.Node:
        line = self._advance().line
        body = self._statement()
        self._expect(TokenType.WHILE, "expected 'while' after do-body")
        self._expect(TokenType.LPAREN, "expected '(' after 'while'")
        condition = self._expression()
        self._expect(TokenType.RPAREN, "expected ')' after do-while condition")
        self._expect(TokenType.SEMICOLON, "expected ';' after do-while")
        return ast.DoWhile(body, condition, line=line)

    def _foreach_statement(self) -> ast.Node:
        line = self._advance().line
        name = self._expect(TokenType.IDENTIFIER, "expected a loop variable name").lexeme
        self._expect(TokenType.IN, "expected 'in' in foreach")
        iterable = self._expression()
        body = self._statement()
        return ast.Foreach(name, iterable, body, line=line)

    def _return_statement(self) -> ast.Node:
        line = self._advance().line
        value = None
        if not self._check(TokenType.SEMICOLON):
            value = self._expression()
        self._expect(TokenType.SEMICOLON, "expected ';' after return")
        return ast.Return(value, line=line)

    def _print_statement(self) -> ast.Node:
        line = self._advance().line
        value = self._expression()
        self._expect(TokenType.SEMICOLON, "expected ';' after print")
        return ast.Print(value, line=line)

    def _expression_statement(self) -> ast.Node:
        line = self._peek().line
        expr = self._expression()
        if self._match(TokenType.ASSIGN):
            value = self._expression()
            if not isinstance(expr, (ast.Identifier, ast.IndexAccess)):
                raise QutesSyntaxError("invalid assignment target", line)
            self._expect(TokenType.SEMICOLON, "expected ';' after assignment")
            return ast.ExpressionStatement(ast.Assignment(expr, value, line=line), line=line)
        self._expect(TokenType.SEMICOLON, "expected ';' after expression")
        return ast.ExpressionStatement(expr, line=line)

    # -- expressions ----------------------------------------------------------------

    def _expression(self) -> ast.Node:
        return self._or_expr()

    def _or_expr(self) -> ast.Node:
        expr = self._and_expr()
        while self._check(TokenType.OR):
            line = self._advance().line
            right = self._and_expr()
            expr = ast.Logical("or", expr, right, line=line)
        return expr

    def _and_expr(self) -> ast.Node:
        expr = self._not_expr()
        while self._check(TokenType.AND):
            line = self._advance().line
            right = self._not_expr()
            expr = ast.Logical("and", expr, right, line=line)
        return expr

    def _not_expr(self) -> ast.Node:
        if self._check(TokenType.NOT):
            line = self._advance().line
            operand = self._not_expr()
            return ast.Unary("not", operand, line=line)
        return self._comparison()

    def _comparison(self) -> ast.Node:
        expr = self._in_expr()
        while self._peek().type in _COMPARISON_OPS:
            token = self._advance()
            right = self._in_expr()
            expr = ast.Comparison(_COMPARISON_OPS[token.type], expr, right, line=token.line)
        return expr

    def _in_expr(self) -> ast.Node:
        expr = self._shift()
        if self._check(TokenType.IN):
            line = self._advance().line
            haystack = self._shift()
            return ast.InExpression(expr, haystack, line=line)
        return expr

    def _shift(self) -> ast.Node:
        expr = self._additive()
        while self._check(TokenType.SHIFT_LEFT, TokenType.SHIFT_RIGHT):
            token = self._advance()
            amount = self._additive()
            op = "<<" if token.type is TokenType.SHIFT_LEFT else ">>"
            expr = ast.ShiftExpression(op, expr, amount, line=token.line)
        return expr

    def _additive(self) -> ast.Node:
        expr = self._multiplicative()
        while self._check(TokenType.PLUS, TokenType.MINUS):
            token = self._advance()
            right = self._multiplicative()
            expr = ast.Binary(token.lexeme, expr, right, line=token.line)
        return expr

    def _multiplicative(self) -> ast.Node:
        expr = self._unary()
        while self._check(TokenType.STAR, TokenType.SLASH, TokenType.PERCENT):
            token = self._advance()
            right = self._unary()
            expr = ast.Binary(token.lexeme, expr, right, line=token.line)
        return expr

    def _unary(self) -> ast.Node:
        if self._check(TokenType.MINUS, TokenType.PLUS):
            token = self._advance()
            operand = self._unary()
            return ast.Unary(token.lexeme, operand, line=token.line)
        return self._gate_expr()

    def _gate_expr(self) -> ast.Node:
        if self._peek().type in _GATE_TOKENS:
            token = self._advance()
            operand = self._unary()
            return ast.GateApplication(token.lexeme, operand, line=token.line)
        return self._postfix()

    def _postfix(self) -> ast.Node:
        expr = self._primary()
        while True:
            if self._check(TokenType.LBRACKET):
                line = self._advance().line
                index = self._expression()
                self._expect(TokenType.RBRACKET, "expected ']' after index")
                expr = ast.IndexAccess(expr, index, line=line)
            elif self._check(TokenType.LPAREN):
                line = self._advance().line
                arguments: List[ast.Node] = []
                if not self._check(TokenType.RPAREN):
                    while True:
                        arguments.append(self._expression())
                        if not self._match(TokenType.COMMA):
                            break
                self._expect(TokenType.RPAREN, "expected ')' after arguments")
                expr = ast.Call(expr, arguments, line=line)
            else:
                return expr

    def _primary(self) -> ast.Node:
        token = self._advance()
        if token.type is TokenType.INT_LITERAL:
            return ast.Literal(token.literal, QutesType.int_(), line=token.line)
        if token.type is TokenType.FLOAT_LITERAL:
            return ast.Literal(token.literal, QutesType.float_(), line=token.line)
        if token.type is TokenType.STRING_LITERAL:
            return ast.Literal(token.literal, QutesType.string(), line=token.line)
        if token.type in (TokenType.TRUE, TokenType.FALSE):
            return ast.Literal(token.type is TokenType.TRUE, QutesType.bool_(), line=token.line)
        if token.type is TokenType.QUANTUM_INT_LITERAL:
            return ast.QuantumLiteral(token.literal, QutesType.quint(), line=token.line)
        if token.type is TokenType.QUANTUM_STRING_LITERAL:
            return ast.QuantumLiteral(token.literal, QutesType.qustring(), line=token.line)
        if token.type is TokenType.KET_LITERAL:
            return ast.KetLiteral(token.literal, line=token.line)
        if token.type is TokenType.IDENTIFIER:
            return ast.Identifier(token.lexeme, line=token.line)
        if token.type is TokenType.LPAREN:
            expr = self._expression()
            self._expect(TokenType.RPAREN, "expected ')' after expression")
            return expr
        if token.type is TokenType.LBRACKET:
            elements: List[ast.Node] = []
            if not self._check(TokenType.RBRACKET):
                while True:
                    elements.append(self._expression())
                    if not self._match(TokenType.COMMA):
                        break
            self._expect(TokenType.RBRACKET, "expected ']' after array literal")
            return ast.ArrayLiteral(elements, line=token.line)
        raise QutesSyntaxError(f"unexpected token {token.lexeme!r}", token.line, token.column)


def parse(source: str) -> ast.Program:
    """Parse Qutes *source* text into an AST."""
    return Parser(tokenize(source)).parse()
