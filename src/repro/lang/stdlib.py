"""A small standard library of Qutes programs and program-analysis helpers.

The paper lists "a comprehensive standard library containing essential
quantum functions and algorithms" as a development goal.  This module ships
the showcase programs as named, parameterisable Qutes sources (used by the
documentation, the benchmarks and downstream users who want ready-made
snippets) together with :func:`program_metrics`, which quantifies the
abstraction gap between a Qutes source and the circuit it generates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .compiler import run_source
from .errors import QutesError
from .lexer import tokenize

__all__ = ["STD_PROGRAMS", "get_program", "list_programs", "ProgramMetrics", "program_metrics"]


def _quantum_addition(a: int = 12, b: int = 30) -> str:
    return f"""
        quint x = {a}q;
        quint y = {b}q;
        quint total = x + y;
        print total;
    """


def _superposition_addition() -> str:
    return """
        quint a = [1, 3];
        quint b = [4, 8];
        print a + b;
    """


def _grover_substring(text: str = "0110100111010110", pattern: str = "111") -> str:
    return f"""
        qustring text = "{text}";
        print "{pattern}" in text;
    """


def _cyclic_shift(width: int = 8, value: int = 137, amount: int = 3) -> str:
    return f"""
        quint[{width}] value = {value}q;
        print value << {amount};
    """


def _deutsch_jozsa_balanced() -> str:
    return """
        function void oracle(quint x, qubit y) { cx(x[0], y); cx(x[2], y); }
        quint[3] x = 0q;
        qubit y = |->;
        hadamard x;
        oracle(x, y);
        hadamard x;
        int reading = x;
        if (reading == 0) { print "constant"; } else { print "balanced"; }
    """


def _deutsch_jozsa_constant() -> str:
    return _deutsch_jozsa_balanced().replace("{ cx(x[0], y); cx(x[2], y); }", "{ }")


def _bell_pair() -> str:
    return """
        qubit left = |+>;
        qubit right = |0>;
        cx(left, right);
        print left == right;
    """


def _coin_flip() -> str:
    return """
        qubit coin = |0>;
        hadamard coin;
        if (coin) { print "heads"; } else { print "tails"; }
    """


def _quantum_counter(limit: int = 4) -> str:
    return f"""
        int i = 0;
        quint total = 0q;
        while (i < {limit}) {{
            total = total + 1;
            i = i + 1;
        }}
        print total;
    """


#: name -> factory returning the Qutes source (factories take keyword args)
STD_PROGRAMS = {
    "quantum_addition": _quantum_addition,
    "superposition_addition": _superposition_addition,
    "grover_substring": _grover_substring,
    "cyclic_shift": _cyclic_shift,
    "deutsch_jozsa_balanced": _deutsch_jozsa_balanced,
    "deutsch_jozsa_constant": _deutsch_jozsa_constant,
    "bell_pair": _bell_pair,
    "coin_flip": _coin_flip,
    "quantum_counter": _quantum_counter,
}


def list_programs() -> list:
    """Names of the bundled standard-library programs."""
    return sorted(STD_PROGRAMS)


def get_program(name: str, **parameters) -> str:
    """Return the Qutes source of the named standard-library program."""
    try:
        factory = STD_PROGRAMS[name]
    except KeyError as exc:
        raise QutesError(f"unknown standard program {name!r}") from exc
    return factory(**parameters)


@dataclass
class ProgramMetrics:
    """Size of a Qutes source versus the circuit it compiles to."""

    name: str
    source_lines: int
    source_tokens: int
    generated_gates: int
    qubits: int
    depth: int
    output: str

    @property
    def expansion_factor(self) -> float:
        """Gate-level instructions generated per source line."""
        return self.generated_gates / max(1, self.source_lines)


def program_metrics(name: str, seed: Optional[int] = 7, **parameters) -> ProgramMetrics:
    """Compile and run a standard program, returning its abstraction metrics."""
    source = get_program(name, **parameters)
    lines = [ln for ln in source.splitlines() if ln.strip() and not ln.strip().startswith("//")]
    tokens = tokenize(source)[:-1]
    result = run_source(source, seed=seed)
    return ProgramMetrics(
        name=name,
        source_lines=len(lines),
        source_tokens=len(tokens),
        generated_gates=sum(result.gate_counts.values()),
        qubits=result.num_qubits,
        depth=result.depth,
        output=result.printed,
    )
