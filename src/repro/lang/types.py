"""The Qutes type system.

The language supports the classical types ``bool``, ``int``, ``float`` and
``string``, the quantum types ``qubit``, ``quint`` and ``qustring``, arrays of
any of those, ``void`` for functions without a return value, and function
types.  :class:`QutesType` instances are immutable value objects; the module
also centralises the promotion rules used by the
:class:`~repro.lang.casting.TypeCastingHandler`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from .errors import QutesTypeError

__all__ = ["TypeKind", "QutesType"]


class TypeKind(enum.Enum):
    """The primitive kinds a Qutes type can have."""

    BOOL = "bool"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    QUBIT = "qubit"
    QUINT = "quint"
    QUSTRING = "qustring"
    VOID = "void"
    ARRAY = "array"
    FUNCTION = "function"


_QUANTUM_KINDS = {TypeKind.QUBIT, TypeKind.QUINT, TypeKind.QUSTRING}
_CLASSICAL_VALUE_KINDS = {TypeKind.BOOL, TypeKind.INT, TypeKind.FLOAT, TypeKind.STRING}

#: classical kind each quantum kind collapses to on measurement
_MEASURE_TARGET = {
    TypeKind.QUBIT: TypeKind.BOOL,
    TypeKind.QUINT: TypeKind.INT,
    TypeKind.QUSTRING: TypeKind.STRING,
}

#: quantum kind each classical kind is promoted to
_PROMOTION_TARGET = {
    TypeKind.BOOL: TypeKind.QUBIT,
    TypeKind.INT: TypeKind.QUINT,
    TypeKind.STRING: TypeKind.QUSTRING,
}


@dataclass(frozen=True)
class QutesType:
    """A (possibly composite) Qutes type.

    ``size`` is only meaningful for quantum kinds and pins the register width
    in declarations such as ``quint[4] counter = 0q;``; ``None`` means "sized
    by the initialiser value".
    """

    kind: TypeKind
    element: Optional["QutesType"] = None
    size: Optional[int] = None

    # -- constructors ----------------------------------------------------------

    @staticmethod
    def bool_() -> "QutesType":
        return QutesType(TypeKind.BOOL)

    @staticmethod
    def int_() -> "QutesType":
        return QutesType(TypeKind.INT)

    @staticmethod
    def float_() -> "QutesType":
        return QutesType(TypeKind.FLOAT)

    @staticmethod
    def string() -> "QutesType":
        return QutesType(TypeKind.STRING)

    @staticmethod
    def qubit() -> "QutesType":
        return QutesType(TypeKind.QUBIT)

    @staticmethod
    def quint() -> "QutesType":
        return QutesType(TypeKind.QUINT)

    @staticmethod
    def qustring() -> "QutesType":
        return QutesType(TypeKind.QUSTRING)

    @staticmethod
    def void() -> "QutesType":
        return QutesType(TypeKind.VOID)

    @staticmethod
    def array_of(element: "QutesType") -> "QutesType":
        if element.kind in (TypeKind.VOID, TypeKind.ARRAY, TypeKind.FUNCTION):
            raise QutesTypeError(f"cannot build an array of {element}")
        return QutesType(TypeKind.ARRAY, element)

    @staticmethod
    def sized(kind_type: "QutesType", size: int) -> "QutesType":
        """A quantum type with an explicit register width (``quint[4]``)."""
        if kind_type.kind not in _QUANTUM_KINDS:
            raise QutesTypeError(f"only quantum types can carry a size, not {kind_type}")
        if size <= 0:
            raise QutesTypeError("quantum register sizes must be positive")
        return QutesType(kind_type.kind, None, size)

    @staticmethod
    def function() -> "QutesType":
        return QutesType(TypeKind.FUNCTION)

    # -- predicates ---------------------------------------------------------------

    @property
    def is_quantum(self) -> bool:
        """Whether values of this type live in quantum registers."""
        if self.kind is TypeKind.ARRAY:
            return self.element.is_quantum  # type: ignore[union-attr]
        return self.kind in _QUANTUM_KINDS

    @property
    def is_classical(self) -> bool:
        """Whether values of this type are plain Python values."""
        if self.kind is TypeKind.ARRAY:
            return self.element.is_classical  # type: ignore[union-attr]
        return self.kind in _CLASSICAL_VALUE_KINDS

    @property
    def is_numeric(self) -> bool:
        """Whether arithmetic is defined on this type."""
        return self.kind in (TypeKind.BOOL, TypeKind.INT, TypeKind.FLOAT, TypeKind.QUBIT, TypeKind.QUINT)

    @property
    def is_array(self) -> bool:
        return self.kind is TypeKind.ARRAY

    # -- conversions ---------------------------------------------------------------

    def measured_type(self) -> "QutesType":
        """The classical type a value of this type collapses to on measurement."""
        if self.kind in _MEASURE_TARGET:
            return QutesType(_MEASURE_TARGET[self.kind])
        if self.kind is TypeKind.ARRAY and self.element is not None and self.element.is_quantum:
            return QutesType.array_of(self.element.measured_type())
        raise QutesTypeError(f"type {self} cannot be measured")

    def promoted_type(self) -> "QutesType":
        """The quantum type a classical value of this type is promoted to."""
        if self.kind in _PROMOTION_TARGET:
            return QutesType(_PROMOTION_TARGET[self.kind])
        raise QutesTypeError(f"type {self} cannot be promoted to a quantum type")

    def can_promote_to(self, other: "QutesType") -> bool:
        """Whether a value of this type may be implicitly converted to *other*."""
        if self == other:
            return True
        kind, target = self.kind, other.kind
        classical_widening = {
            (TypeKind.BOOL, TypeKind.INT),
            (TypeKind.BOOL, TypeKind.FLOAT),
            (TypeKind.INT, TypeKind.FLOAT),
        }
        if (kind, target) in classical_widening:
            return True
        quantum_promotion = {
            (TypeKind.BOOL, TypeKind.QUBIT),
            (TypeKind.BOOL, TypeKind.QUINT),
            (TypeKind.INT, TypeKind.QUINT),
            (TypeKind.STRING, TypeKind.QUSTRING),
            (TypeKind.QUBIT, TypeKind.QUINT),
        }
        if (kind, target) in quantum_promotion:
            return True
        measurement = {
            (TypeKind.QUBIT, TypeKind.BOOL),
            (TypeKind.QUBIT, TypeKind.INT),
            (TypeKind.QUINT, TypeKind.INT),
            (TypeKind.QUSTRING, TypeKind.STRING),
        }
        if (kind, target) in measurement:
            return True
        if kind is TypeKind.ARRAY and target is TypeKind.ARRAY:
            return self.element.can_promote_to(other.element)  # type: ignore[union-attr]
        return False

    def __str__(self) -> str:
        if self.kind is TypeKind.ARRAY:
            return f"{self.element}[]"
        if self.size is not None:
            return f"{self.kind.value}[{self.size}]"
        return self.kind.value

    def __repr__(self) -> str:
        return f"QutesType({self})"
