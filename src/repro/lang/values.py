"""Runtime value representations.

Classical values are plain Python objects (``bool``, ``int``, ``float``,
``str``, ``list``).  Quantum values are :class:`QuantumVariable` handles that
own a slice of the global quantum state managed by the
:class:`~repro.lang.circuit_handler.QuantumCircuitHandler`: the handle stores
the global qubit indices of its register plus bookkeeping used by the
language runtime (declared type, the classically known value when the
register is still in a basis state, and the register name for diagnostics).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from .errors import QutesRuntimeError
from .types import QutesType, TypeKind

__all__ = ["QuantumVariable", "qubits_needed_for_int", "type_of_python_value"]


def qubits_needed_for_int(value: int) -> int:
    """Number of qubits needed to hold the non-negative integer *value*."""
    if value < 0:
        raise QutesRuntimeError("quantum integers must be non-negative")
    return max(1, value.bit_length())


@dataclass
class QuantumVariable:
    """A handle to a quantum register owned by the circuit handler.

    Attributes:
        name: the register / variable name.
        type: the Qutes quantum type (``qubit``, ``quint`` or ``qustring``).
        qubits: global indices of the qubits backing the value (little-endian
            for ``quint``; character ``i`` of a ``qustring`` is qubit ``i``).
        classical_hint: when the register is known to still hold a classical
            basis state (it was initialised from a classical value and no
            gate has touched it since), the integer value of that state; used
            by oracle builders that need the classical content (e.g. the
            Grover substring search).  ``None`` once the state may be in
            superposition.
    """

    name: str
    type: QutesType
    qubits: List[int] = field(default_factory=list)
    classical_hint: Optional[int] = None

    @property
    def size(self) -> int:
        """Number of qubits backing this variable."""
        return len(self.qubits)

    def invalidate_hint(self) -> None:
        """Forget the classically known value (after a gate or entanglement)."""
        self.classical_hint = None

    def hint_as_string(self) -> Optional[str]:
        """The classical hint rendered as a bitstring (qustring semantics)."""
        if self.classical_hint is None:
            return None
        return "".join(
            "1" if (self.classical_hint >> i) & 1 else "0" for i in range(self.size)
        )

    def __repr__(self) -> str:
        return f"QuantumVariable({self.name!r}: {self.type}, qubits={self.qubits})"


def type_of_python_value(value) -> QutesType:
    """Infer the Qutes type of a plain Python runtime value."""
    if isinstance(value, QuantumVariable):
        return value.type
    if isinstance(value, bool):
        return QutesType.bool_()
    if isinstance(value, int):
        return QutesType.int_()
    if isinstance(value, float):
        return QutesType.float_()
    if isinstance(value, str):
        return QutesType.string()
    if isinstance(value, list):
        if not value:
            return QutesType.array_of(QutesType.int_())
        return QutesType.array_of(type_of_python_value(value[0]))
    if value is None:
        return QutesType.void()
    raise QutesRuntimeError(f"value {value!r} has no Qutes type")
