"""Abstract syntax tree node definitions.

The parser produces a tree of these dataclasses; the two interpreter passes
(symbol declaration and execution) visit them.  Every node carries the source
line of its first token for error reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from .tokens import Token
from .types import QutesType

__all__ = [
    "Node",
    "Program",
    "Literal",
    "QuantumLiteral",
    "KetLiteral",
    "ArrayLiteral",
    "Identifier",
    "Unary",
    "GateApplication",
    "Binary",
    "Logical",
    "Comparison",
    "InExpression",
    "ShiftExpression",
    "IndexAccess",
    "Call",
    "Assignment",
    "VarDeclaration",
    "FunctionDeclaration",
    "Parameter",
    "Block",
    "If",
    "While",
    "DoWhile",
    "Foreach",
    "Return",
    "Print",
    "BarrierStatement",
    "ExpressionStatement",
]


@dataclass
class Node:
    """Base class of every AST node."""

    line: int = field(default=0, kw_only=True)


# -- expressions ---------------------------------------------------------------


@dataclass
class Literal(Node):
    """A classical literal: int, float, bool or string."""

    value: Any
    type: QutesType


@dataclass
class QuantumLiteral(Node):
    """A quantum literal (``5q`` or ``"0101"q``)."""

    value: Any
    type: QutesType


@dataclass
class KetLiteral(Node):
    """A single-qubit ket literal: ``|0>``, ``|1>``, ``|+>`` or ``|->``."""

    state: str


@dataclass
class ArrayLiteral(Node):
    """A bracketed list of expressions, e.g. ``[1, 2, 3]``."""

    elements: List[Node]


@dataclass
class Identifier(Node):
    """A reference to a declared variable or function."""

    name: str


@dataclass
class Unary(Node):
    """Unary arithmetic/logic operator: ``-x``, ``+x``, ``not x``."""

    operator: str
    operand: Node


@dataclass
class GateApplication(Node):
    """A prefix quantum operator: ``hadamard x``, ``paulix x``, ``measure x``."""

    gate: str
    operand: Node


@dataclass
class Binary(Node):
    """Arithmetic binary operator: ``+ - * / %``."""

    operator: str
    left: Node
    right: Node


@dataclass
class Logical(Node):
    """Short-circuiting logical operator: ``and`` / ``or``."""

    operator: str
    left: Node
    right: Node


@dataclass
class Comparison(Node):
    """Comparison operator: ``== != > >= < <=``."""

    operator: str
    left: Node
    right: Node


@dataclass
class InExpression(Node):
    """Substring / membership search: ``pattern in haystack``."""

    needle: Node
    haystack: Node


@dataclass
class ShiftExpression(Node):
    """Cyclic shift of a quantum register: ``value << k`` / ``value >> k``."""

    operator: str
    value: Node
    amount: Node


@dataclass
class IndexAccess(Node):
    """Array indexing: ``arr[index]``."""

    collection: Node
    index: Node


@dataclass
class Call(Node):
    """Function call: ``name(arg, ...)``."""

    callee: Node
    arguments: List[Node]


@dataclass
class Assignment(Node):
    """Assignment to a variable or array element."""

    target: Node
    value: Node


# -- statements ---------------------------------------------------------------


@dataclass
class Parameter(Node):
    """A single function parameter (type + name)."""

    type: QutesType
    name: str


@dataclass
class VarDeclaration(Node):
    """``type name = initializer;`` (initializer optional)."""

    type: QutesType
    name: str
    initializer: Optional[Node]


@dataclass
class FunctionDeclaration(Node):
    """A user-defined function."""

    return_type: QutesType
    name: str
    parameters: List[Parameter]
    body: "Block"


@dataclass
class Block(Node):
    """A braced list of statements introducing a new scope."""

    statements: List[Node]


@dataclass
class If(Node):
    """``if (condition) then_branch [else else_branch]``."""

    condition: Node
    then_branch: Node
    else_branch: Optional[Node]


@dataclass
class While(Node):
    """``while (condition) body``."""

    condition: Node
    body: Node


@dataclass
class DoWhile(Node):
    """``do body while (condition);``."""

    body: Node
    condition: Node


@dataclass
class Foreach(Node):
    """``foreach name in iterable body``."""

    variable: str
    iterable: Node
    body: Node


@dataclass
class Return(Node):
    """``return [expression];``."""

    value: Optional[Node]


@dataclass
class Print(Node):
    """``print expression;`` -- measuring quantum operands automatically."""

    value: Node


@dataclass
class BarrierStatement(Node):
    """``barrier;`` -- a scheduling barrier over all allocated qubits."""


@dataclass
class ExpressionStatement(Node):
    """A bare expression used as a statement."""

    expression: Node


@dataclass
class Program(Node):
    """The root node: a list of top-level statements."""

    statements: List[Node]
