"""Error hierarchy of the Qutes front-end and runtime."""

from __future__ import annotations

__all__ = [
    "QutesError",
    "QutesSyntaxError",
    "QutesTypeError",
    "QutesNameError",
    "QutesRuntimeError",
]


class QutesError(Exception):
    """Base class of every error raised while compiling or running Qutes code."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.message = message
        self.line = line
        self.column = column
        location = ""
        if line is not None:
            location = f" (line {line}" + (f", column {column}" if column is not None else "") + ")"
        super().__init__(f"{message}{location}")


class QutesSyntaxError(QutesError):
    """Raised by the lexer or parser for malformed source text."""


class QutesTypeError(QutesError):
    """Raised when an operation is applied to incompatible types."""


class QutesNameError(QutesError):
    """Raised for undeclared identifiers, redeclarations and scope violations."""


class QutesRuntimeError(QutesError):
    """Raised for errors that only manifest while the program executes."""
