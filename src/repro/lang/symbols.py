"""Symbols and scoped symbol tables.

As in the original implementation, the first AST pass instantiates a
:class:`Symbol` for every declared name, carrying its type and scope; the
execution pass then binds runtime values to those symbols.  Scoping is
lexical with a simple stack of dictionaries; functions get their own scope
chain rooted at the global scope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from .errors import QutesNameError
from .types import QutesType

__all__ = ["Symbol", "FunctionSymbol", "Scope", "SymbolTable"]


@dataclass
class Symbol:
    """A declared variable.

    Attributes:
        name: the identifier.
        type: the declared Qutes type.
        scope_level: nesting depth of the declaring scope (0 = global).
        value: the runtime value currently bound to the symbol.
        declared_line: source line of the declaration (for diagnostics).
    """

    name: str
    type: QutesType
    scope_level: int = 0
    value: Any = None
    declared_line: Optional[int] = None

    def __repr__(self) -> str:
        return f"Symbol({self.name!r}: {self.type}, scope={self.scope_level})"


@dataclass
class FunctionSymbol:
    """A user-defined function registered during the declaration pass."""

    name: str
    return_type: QutesType
    parameters: List[Any]  # list of ast.Parameter
    body: Any  # ast.Block
    declared_line: Optional[int] = None

    @property
    def arity(self) -> int:
        return len(self.parameters)

    def __repr__(self) -> str:
        params = ", ".join(str(p.type) for p in self.parameters)
        return f"FunctionSymbol({self.name}({params}) -> {self.return_type})"


class Scope:
    """A single lexical scope: a mapping from names to symbols."""

    def __init__(self, level: int, parent: Optional["Scope"] = None):
        self.level = level
        self.parent = parent
        self.symbols: Dict[str, Symbol] = {}

    def declare(self, symbol: Symbol) -> Symbol:
        if symbol.name in self.symbols:
            raise QutesNameError(
                f"variable {symbol.name!r} is already declared in this scope",
                symbol.declared_line,
            )
        symbol.scope_level = self.level
        self.symbols[symbol.name] = symbol
        return symbol

    def resolve(self, name: str) -> Optional[Symbol]:
        scope: Optional[Scope] = self
        while scope is not None:
            if name in scope.symbols:
                return scope.symbols[name]
            scope = scope.parent
        return None


class SymbolTable:
    """A stack of scopes plus the global function registry."""

    def __init__(self) -> None:
        self.global_scope = Scope(0)
        self._current = self.global_scope
        self.functions: Dict[str, FunctionSymbol] = {}

    # -- scope management ---------------------------------------------------------

    @property
    def current_scope(self) -> Scope:
        return self._current

    @property
    def depth(self) -> int:
        return self._current.level

    def push_scope(self, parent: Optional[Scope] = None) -> Scope:
        """Enter a new scope (child of *parent*, default the current scope)."""
        base = parent if parent is not None else self._current
        self._current = Scope(base.level + 1, base)
        return self._current

    def pop_scope(self) -> Scope:
        """Leave the current scope and return to its parent."""
        if self._current.parent is None:
            raise QutesNameError("cannot pop the global scope")
        old = self._current
        self._current = self._current.parent
        return old

    # -- variables -------------------------------------------------------------------

    def declare(self, name: str, var_type: QutesType, value: Any = None,
                line: Optional[int] = None) -> Symbol:
        """Declare a new variable in the current scope."""
        symbol = Symbol(name=name, type=var_type, value=value, declared_line=line)
        return self._current.declare(symbol)

    def resolve(self, name: str, line: Optional[int] = None) -> Symbol:
        """Look *name* up through the enclosing scopes; raise if unknown."""
        symbol = self._current.resolve(name)
        if symbol is None:
            raise QutesNameError(f"undefined variable {name!r}", line)
        return symbol

    def is_declared(self, name: str) -> bool:
        return self._current.resolve(name) is not None

    # -- functions -------------------------------------------------------------------

    def declare_function(self, function: FunctionSymbol) -> FunctionSymbol:
        if function.name in self.functions:
            raise QutesNameError(
                f"function {function.name!r} is already defined", function.declared_line
            )
        self.functions[function.name] = function
        return function

    def resolve_function(self, name: str, line: Optional[int] = None) -> FunctionSymbol:
        if name not in self.functions:
            raise QutesNameError(f"undefined function {name!r}", line)
        return self.functions[name]

    def has_function(self, name: str) -> bool:
        return name in self.functions
