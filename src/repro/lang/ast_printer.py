"""AST inspection utilities.

Two developer-facing tools built on the AST:

* :func:`dump_ast` -- an indented, s-expression-like rendering of the tree,
  used by the CLI ``--ast`` flag and handy when debugging grammar changes;
* :func:`format_source` -- a canonical re-formatter that re-emits a parsed
  program as Qutes source (stable indentation, one statement per line).
  Formatting then re-parsing yields an equivalent AST, which the tests check.
"""

from __future__ import annotations

from typing import List

from . import ast_nodes as ast
from .errors import QutesError

__all__ = ["dump_ast", "format_source"]


# ---------------------------------------------------------------------------
# AST dump
# ---------------------------------------------------------------------------

def dump_ast(node: ast.Node, indent: int = 0) -> str:
    """Return an indented textual rendering of *node* and its children."""
    pad = "  " * indent
    if isinstance(node, ast.Program):
        lines = [f"{pad}Program"]
        lines += [dump_ast(s, indent + 1) for s in node.statements]
        return "\n".join(lines)
    if isinstance(node, ast.VarDeclaration):
        head = f"{pad}VarDeclaration {node.type} {node.name}"
        if node.initializer is None:
            return head
        return head + "\n" + dump_ast(node.initializer, indent + 1)
    if isinstance(node, ast.FunctionDeclaration):
        params = ", ".join(f"{p.type} {p.name}" for p in node.parameters)
        return (
            f"{pad}FunctionDeclaration {node.return_type} {node.name}({params})\n"
            + dump_ast(node.body, indent + 1)
        )
    if isinstance(node, ast.Block):
        lines = [f"{pad}Block"]
        lines += [dump_ast(s, indent + 1) for s in node.statements]
        return "\n".join(lines)
    if isinstance(node, ast.If):
        lines = [f"{pad}If", dump_ast(node.condition, indent + 1), dump_ast(node.then_branch, indent + 1)]
        if node.else_branch is not None:
            lines.append(f"{pad}Else")
            lines.append(dump_ast(node.else_branch, indent + 1))
        return "\n".join(lines)
    if isinstance(node, ast.While):
        return f"{pad}While\n" + dump_ast(node.condition, indent + 1) + "\n" + dump_ast(node.body, indent + 1)
    if isinstance(node, ast.DoWhile):
        return f"{pad}DoWhile\n" + dump_ast(node.body, indent + 1) + "\n" + dump_ast(node.condition, indent + 1)
    if isinstance(node, ast.Foreach):
        return f"{pad}Foreach {node.variable}\n" + dump_ast(node.iterable, indent + 1) + "\n" + dump_ast(node.body, indent + 1)
    if isinstance(node, ast.Return):
        if node.value is None:
            return f"{pad}Return"
        return f"{pad}Return\n" + dump_ast(node.value, indent + 1)
    if isinstance(node, ast.Print):
        return f"{pad}Print\n" + dump_ast(node.value, indent + 1)
    if isinstance(node, ast.BarrierStatement):
        return f"{pad}Barrier"
    if isinstance(node, ast.ExpressionStatement):
        return f"{pad}ExpressionStatement\n" + dump_ast(node.expression, indent + 1)
    if isinstance(node, ast.Assignment):
        return f"{pad}Assignment\n" + dump_ast(node.target, indent + 1) + "\n" + dump_ast(node.value, indent + 1)
    if isinstance(node, ast.Literal):
        return f"{pad}Literal {node.type} {node.value!r}"
    if isinstance(node, ast.QuantumLiteral):
        return f"{pad}QuantumLiteral {node.type} {node.value!r}"
    if isinstance(node, ast.KetLiteral):
        return f"{pad}KetLiteral |{node.state}>"
    if isinstance(node, ast.ArrayLiteral):
        lines = [f"{pad}ArrayLiteral"]
        lines += [dump_ast(e, indent + 1) for e in node.elements]
        return "\n".join(lines)
    if isinstance(node, ast.Identifier):
        return f"{pad}Identifier {node.name}"
    if isinstance(node, (ast.Binary, ast.Logical, ast.Comparison)):
        return (
            f"{pad}{type(node).__name__} {node.operator}\n"
            + dump_ast(node.left, indent + 1)
            + "\n"
            + dump_ast(node.right, indent + 1)
        )
    if isinstance(node, ast.Unary):
        return f"{pad}Unary {node.operator}\n" + dump_ast(node.operand, indent + 1)
    if isinstance(node, ast.GateApplication):
        return f"{pad}GateApplication {node.gate}\n" + dump_ast(node.operand, indent + 1)
    if isinstance(node, ast.InExpression):
        return f"{pad}InExpression\n" + dump_ast(node.needle, indent + 1) + "\n" + dump_ast(node.haystack, indent + 1)
    if isinstance(node, ast.ShiftExpression):
        return f"{pad}ShiftExpression {node.operator}\n" + dump_ast(node.value, indent + 1) + "\n" + dump_ast(node.amount, indent + 1)
    if isinstance(node, ast.IndexAccess):
        return f"{pad}IndexAccess\n" + dump_ast(node.collection, indent + 1) + "\n" + dump_ast(node.index, indent + 1)
    if isinstance(node, ast.Call):
        lines = [f"{pad}Call", dump_ast(node.callee, indent + 1)]
        lines += [dump_ast(a, indent + 1) for a in node.arguments]
        return "\n".join(lines)
    raise QutesError(f"cannot dump node {type(node).__name__}")


# ---------------------------------------------------------------------------
# Source formatter
# ---------------------------------------------------------------------------

def format_source(program: ast.Program, indent_width: int = 4) -> str:
    """Re-emit *program* as canonical Qutes source."""
    lines: List[str] = []
    for statement in program.statements:
        lines.extend(_format_statement(statement, 0, indent_width))
    return "\n".join(lines) + "\n"


def _format_statement(node: ast.Node, level: int, width: int) -> List[str]:
    pad = " " * (width * level)
    if isinstance(node, ast.VarDeclaration):
        init = f" = {_format_expression(node.initializer)}" if node.initializer is not None else ""
        return [f"{pad}{node.type} {node.name}{init};"]
    if isinstance(node, ast.FunctionDeclaration):
        params = ", ".join(f"{p.type} {p.name}" for p in node.parameters)
        lines = [f"{pad}function {node.return_type} {node.name}({params}) {{"]
        for inner in node.body.statements:
            lines.extend(_format_statement(inner, level + 1, width))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(node, ast.Block):
        lines = [f"{pad}{{"]
        for inner in node.statements:
            lines.extend(_format_statement(inner, level + 1, width))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(node, ast.If):
        lines = [f"{pad}if ({_format_expression(node.condition)}) {{"]
        lines.extend(_format_branch(node.then_branch, level, width))
        if node.else_branch is not None:
            lines.append(f"{pad}}} else {{")
            lines.extend(_format_branch(node.else_branch, level, width))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(node, ast.While):
        lines = [f"{pad}while ({_format_expression(node.condition)}) {{"]
        lines.extend(_format_branch(node.body, level, width))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(node, ast.DoWhile):
        lines = [f"{pad}do {{"]
        lines.extend(_format_branch(node.body, level, width))
        lines.append(f"{pad}}} while ({_format_expression(node.condition)});")
        return lines
    if isinstance(node, ast.Foreach):
        lines = [f"{pad}foreach {node.variable} in {_format_expression(node.iterable)} {{"]
        lines.extend(_format_branch(node.body, level, width))
        lines.append(f"{pad}}}")
        return lines
    if isinstance(node, ast.Return):
        if node.value is None:
            return [f"{pad}return;"]
        return [f"{pad}return {_format_expression(node.value)};"]
    if isinstance(node, ast.Print):
        return [f"{pad}print {_format_expression(node.value)};"]
    if isinstance(node, ast.BarrierStatement):
        return [f"{pad}barrier;"]
    if isinstance(node, ast.ExpressionStatement):
        expr = node.expression
        if isinstance(expr, ast.Assignment):
            return [f"{pad}{_format_expression(expr.target)} = {_format_expression(expr.value)};"]
        return [f"{pad}{_format_expression(expr)};"]
    raise QutesError(f"cannot format node {type(node).__name__}")


def _format_branch(branch: ast.Node, level: int, width: int) -> List[str]:
    if isinstance(branch, ast.Block):
        lines: List[str] = []
        for inner in branch.statements:
            lines.extend(_format_statement(inner, level + 1, width))
        return lines
    return _format_statement(branch, level + 1, width)


def _format_expression(node: ast.Node) -> str:
    if isinstance(node, ast.Literal):
        if isinstance(node.value, bool):
            return "true" if node.value else "false"
        if isinstance(node.value, str):
            escaped = node.value.replace("\\", "\\\\").replace('"', '\\"')
            return f'"{escaped}"'
        return repr(node.value)
    if isinstance(node, ast.QuantumLiteral):
        if isinstance(node.value, str):
            return f'"{node.value}"q'
        return f"{node.value}q"
    if isinstance(node, ast.KetLiteral):
        return f"|{node.state}>"
    if isinstance(node, ast.ArrayLiteral):
        return "[" + ", ".join(_format_expression(e) for e in node.elements) + "]"
    if isinstance(node, ast.Identifier):
        return node.name
    if isinstance(node, (ast.Binary, ast.Comparison)):
        return f"({_format_expression(node.left)} {node.operator} {_format_expression(node.right)})"
    if isinstance(node, ast.Logical):
        return f"({_format_expression(node.left)} {node.operator} {_format_expression(node.right)})"
    if isinstance(node, ast.Unary):
        spacer = " " if node.operator == "not" else ""
        return f"({node.operator}{spacer}{_format_expression(node.operand)})"
    if isinstance(node, ast.GateApplication):
        return f"{node.gate} {_format_expression(node.operand)}"
    if isinstance(node, ast.InExpression):
        return f"({_format_expression(node.needle)} in {_format_expression(node.haystack)})"
    if isinstance(node, ast.ShiftExpression):
        return f"({_format_expression(node.value)} {node.operator} {_format_expression(node.amount)})"
    if isinstance(node, ast.IndexAccess):
        return f"{_format_expression(node.collection)}[{_format_expression(node.index)}]"
    if isinstance(node, ast.Call):
        args = ", ".join(_format_expression(a) for a in node.arguments)
        return f"{_format_expression(node.callee)}({args})"
    if isinstance(node, ast.Assignment):
        return f"{_format_expression(node.target)} = {_format_expression(node.value)}"
    raise QutesError(f"cannot format expression {type(node).__name__}")
