"""The Qutes language: lexer, parser, type system, and hybrid runtime.

This package is the reproduction of the paper's primary contribution.  The
pipeline mirrors the one described in Section 3 of the paper:

1. :mod:`repro.lang.lexer` + :mod:`repro.lang.parser` turn source text into an
   AST (:mod:`repro.lang.ast_nodes`), replacing the ANTLR-generated parser.
2. A first pass (:class:`repro.lang.interpreter.SymbolDeclarationPass`)
   instantiates :class:`~repro.lang.symbols.Symbol` objects with type and
   scope information.
3. A second pass (:class:`repro.lang.interpreter.Interpreter`) executes the
   program: classical operations run directly in Python, quantum operations
   are logged by the :class:`~repro.lang.circuit_handler.QuantumCircuitHandler`
   and applied to a live statevector.
4. The :class:`~repro.lang.casting.TypeCastingHandler` mediates every
   classical <-> quantum conversion (encoding values into registers,
   automatic measurement when quantum data meets classical context).

The user-facing entry points are re-exported from :mod:`repro.lang.compiler`.
"""

from .errors import (
    QutesError,
    QutesNameError,
    QutesRuntimeError,
    QutesSyntaxError,
    QutesTypeError,
)
from .types import QutesType, TypeKind
from .compiler import (
    CompiledProgram,
    QutesExecutionResult,
    compile_source,
    parse_source,
    run_file,
    run_source,
)

__all__ = [
    "QutesError",
    "QutesSyntaxError",
    "QutesTypeError",
    "QutesNameError",
    "QutesRuntimeError",
    "QutesType",
    "TypeKind",
    "CompiledProgram",
    "QutesExecutionResult",
    "compile_source",
    "parse_source",
    "run_source",
    "run_file",
]
