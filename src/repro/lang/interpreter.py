"""The two-pass Qutes interpreter.

Mirroring the architecture of the paper (Section 3):

1. :class:`SymbolDeclarationPass` walks the AST once and registers every
   top-level function (and validates duplicate declarations), so functions
   may be called before their textual definition.
2. :class:`Interpreter` walks the AST a second time and executes it:
   classical operations run directly in Python, quantum operations are
   delegated to the :class:`~repro.lang.operations.OperationEngine`, which
   logs circuit instructions through the
   :class:`~repro.lang.circuit_handler.QuantumCircuitHandler`; every
   classical <-> quantum boundary crossing goes through the
   :class:`~repro.lang.casting.TypeCastingHandler`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from . import ast_nodes as ast
from .casting import TypeCastingHandler
from .circuit_handler import QuantumCircuitHandler
from .errors import QutesNameError, QutesRuntimeError, QutesTypeError
from .operations import OperationEngine
from .symbols import FunctionSymbol, SymbolTable
from .types import QutesType, TypeKind
from .values import QuantumVariable, type_of_python_value

__all__ = ["SymbolDeclarationPass", "Interpreter", "MAX_LOOP_ITERATIONS"]

#: guard against non-terminating while/do-while loops in user programs
MAX_LOOP_ITERATIONS = 100_000


class _ReturnSignal(Exception):
    """Internal control-flow signal used to unwind out of function bodies."""

    def __init__(self, value: Any):
        self.value = value
        super().__init__("return")


class SymbolDeclarationPass:
    """First AST pass: collect function declarations into the symbol table."""

    def __init__(self, symbols: SymbolTable):
        self.symbols = symbols

    def run(self, program: ast.Program) -> SymbolTable:
        for statement in program.statements:
            if isinstance(statement, ast.FunctionDeclaration):
                self.symbols.declare_function(
                    FunctionSymbol(
                        name=statement.name,
                        return_type=statement.return_type,
                        parameters=statement.parameters,
                        body=statement.body,
                        declared_line=statement.line,
                    )
                )
        return self.symbols


class Interpreter:
    """Second AST pass: execute the program."""

    def __init__(
        self,
        handler: Optional[QuantumCircuitHandler] = None,
        shots: int = 1024,
        seed: Optional[int] = None,
        backend=None,
    ):
        # the execution backend (repro.qsim.backends) drives the program's
        # batch-style statistics: sample(), min_of()/max_of() quantum search
        # rounds.  A registry name is resolved here, seeded like the handler
        # so `--backend NAME --seed S` runs stay deterministic end to end.
        if isinstance(backend, str):
            from ..qsim.backends import get_backend

            backend = get_backend(backend, seed=seed)
        self.backend = backend
        self.handler = handler or QuantumCircuitHandler(seed=seed, backend=backend)
        self.casting = TypeCastingHandler(self.handler)
        self.operations = OperationEngine(self.handler, self.casting)
        self.symbols = SymbolTable()
        self.output: List[str] = []
        self.shots = shots
        self._builtins: Dict[str, Callable[..., Any]] = {
            "size": self._builtin_size,
            "sample": self._builtin_sample,
            "depth": self._builtin_depth,
            "gate_count": self._builtin_gate_count,
            "qasm": self._builtin_qasm,
            "to_int": self._builtin_to_int,
            "to_bool": self._builtin_to_bool,
            "cx": self._builtin_cx,
            "cz": self._builtin_cz,
            "swap": self._builtin_swap,
            "min_of": self._builtin_min_of,
            "max_of": self._builtin_max_of,
        }

    # -- program entry point ---------------------------------------------------------

    def run(self, program: ast.Program) -> None:
        """Execute *program* (both passes)."""
        SymbolDeclarationPass(self.symbols).run(program)
        for statement in program.statements:
            self._execute(statement)

    # -- statement dispatch -------------------------------------------------------------

    def _execute(self, node: ast.Node) -> None:
        method = getattr(self, f"_exec_{type(node).__name__}", None)
        if method is None:
            raise QutesRuntimeError(f"cannot execute node {type(node).__name__}", node.line)
        method(node)

    def _exec_FunctionDeclaration(self, node: ast.FunctionDeclaration) -> None:
        # already registered by the declaration pass; nothing to execute.
        return

    def _exec_VarDeclaration(self, node: ast.VarDeclaration) -> None:
        value: Any = None
        if node.initializer is not None:
            value = self._evaluate(node.initializer)
            value = self.casting.coerce_for_declaration(value, node.type, node.name)
        else:
            value = self._default_value(node.type, node.name)
        symbol = self.symbols.declare(node.name, node.type, value, line=node.line)
        if isinstance(value, QuantumVariable):
            value.name = node.name
            symbol.value = value

    def _default_value(self, var_type: QutesType, name: str) -> Any:
        kind = var_type.kind
        if kind is TypeKind.BOOL:
            return False
        if kind is TypeKind.INT:
            return 0
        if kind is TypeKind.FLOAT:
            return 0.0
        if kind is TypeKind.STRING:
            return ""
        if kind is TypeKind.ARRAY:
            return []
        if kind is TypeKind.QUBIT:
            return self.casting.encode_bool(False, name)
        if kind is TypeKind.QUINT:
            return self.casting.encode_int(0, name, num_qubits=var_type.size)
        if kind is TypeKind.QUSTRING:
            return self.casting.encode_bitstring("0" * (var_type.size or 1), name)
        raise QutesTypeError(f"cannot default-initialise type {var_type}")

    def _exec_Block(self, node: ast.Block) -> None:
        self.symbols.push_scope()
        try:
            for statement in node.statements:
                self._execute(statement)
        finally:
            self.symbols.pop_scope()

    def _exec_If(self, node: ast.If) -> None:
        condition = self.casting.to_bool(self._evaluate(node.condition))
        if condition:
            self._execute(node.then_branch)
        elif node.else_branch is not None:
            self._execute(node.else_branch)

    def _exec_While(self, node: ast.While) -> None:
        iterations = 0
        while self.casting.to_bool(self._evaluate(node.condition)):
            self._execute(node.body)
            iterations += 1
            if iterations > MAX_LOOP_ITERATIONS:
                raise QutesRuntimeError("while loop exceeded the iteration limit", node.line)

    def _exec_DoWhile(self, node: ast.DoWhile) -> None:
        iterations = 0
        while True:
            self._execute(node.body)
            iterations += 1
            if not self.casting.to_bool(self._evaluate(node.condition)):
                break
            if iterations > MAX_LOOP_ITERATIONS:
                raise QutesRuntimeError("do-while loop exceeded the iteration limit", node.line)

    def _exec_Foreach(self, node: ast.Foreach) -> None:
        iterable = self._evaluate(node.iterable)
        if isinstance(iterable, QuantumVariable):
            raise QutesTypeError("foreach iterates over arrays or strings", node.line)
        if isinstance(iterable, str):
            items: List[Any] = list(iterable)
        elif isinstance(iterable, list):
            items = iterable
        else:
            raise QutesTypeError(
                f"cannot iterate over {type_of_python_value(iterable)}", node.line
            )
        for item in items:
            self.symbols.push_scope()
            try:
                self.symbols.declare(node.variable, type_of_python_value(item), item, line=node.line)
                self._execute(node.body)
            finally:
                self.symbols.pop_scope()

    def _exec_Return(self, node: ast.Return) -> None:
        value = self._evaluate(node.value) if node.value is not None else None
        raise _ReturnSignal(value)

    def _exec_Print(self, node: ast.Print) -> None:
        value = self._evaluate(node.value)
        rendered = self._render(value)
        self.output.append(rendered)

    def _render(self, value: Any) -> str:
        if isinstance(value, QuantumVariable):
            # printing a quantum variable requires a measurement (paper §5)
            measured = self.casting.measure_variable(value)
            return self._render(measured)
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, float):
            return f"{value:g}"
        if isinstance(value, list):
            return "[" + ", ".join(self._render(v) for v in value) + "]"
        return str(value)

    def _exec_BarrierStatement(self, node: ast.BarrierStatement) -> None:
        self.handler.barrier()

    def _exec_ExpressionStatement(self, node: ast.ExpressionStatement) -> None:
        self._evaluate(node.expression)

    # -- expression dispatch -----------------------------------------------------------

    def _evaluate(self, node: ast.Node) -> Any:
        method = getattr(self, f"_eval_{type(node).__name__}", None)
        if method is None:
            raise QutesRuntimeError(f"cannot evaluate node {type(node).__name__}", node.line)
        return method(node)

    def _eval_Literal(self, node: ast.Literal) -> Any:
        return node.value

    def _eval_QuantumLiteral(self, node: ast.QuantumLiteral) -> QuantumVariable:
        if node.type.kind is TypeKind.QUINT:
            return self.casting.encode_int(node.value, name="qlit")
        if node.type.kind is TypeKind.QUSTRING:
            return self.casting.encode_bitstring(node.value, name="qslit")
        raise QutesTypeError(f"unsupported quantum literal type {node.type}", node.line)

    def _eval_KetLiteral(self, node: ast.KetLiteral) -> QuantumVariable:
        return self.casting.encode_ket(node.state, name="ket")

    def _eval_ArrayLiteral(self, node: ast.ArrayLiteral) -> List[Any]:
        return [self._evaluate(element) for element in node.elements]

    def _eval_Identifier(self, node: ast.Identifier) -> Any:
        symbol = self.symbols.resolve(node.name, line=node.line)
        return symbol.value

    def _eval_Unary(self, node: ast.Unary) -> Any:
        return self.operations.unary(node.operator, self._evaluate(node.operand))

    def _eval_GateApplication(self, node: ast.GateApplication) -> Any:
        operand = self._evaluate(node.operand)
        if node.gate == "measure":
            if isinstance(operand, QuantumVariable):
                return self.casting.measure_variable(operand)
            if isinstance(operand, list):
                return self.casting.to_classical(operand)
            return operand
        return self.operations.apply_named_gate(node.gate, operand)

    def _eval_Binary(self, node: ast.Binary) -> Any:
        left = self._evaluate(node.left)
        right = self._evaluate(node.right)
        return self.operations.binary(node.operator, left, right)

    def _eval_Logical(self, node: ast.Logical) -> Any:
        left = self._evaluate(node.left)
        return self.operations.logical(node.operator, left, lambda: self._evaluate(node.right))

    def _eval_Comparison(self, node: ast.Comparison) -> bool:
        left = self._evaluate(node.left)
        right = self._evaluate(node.right)
        return self.operations.compare(node.operator, left, right)

    def _eval_InExpression(self, node: ast.InExpression) -> bool:
        needle = self._evaluate(node.needle)
        haystack = self._evaluate(node.haystack)
        if isinstance(haystack, list):
            # classical membership over arrays
            classical_needle = self.casting.to_classical(needle)
            return classical_needle in [self.casting.to_classical(item) for item in haystack]
        return self.operations.membership(needle, haystack)

    def _eval_ShiftExpression(self, node: ast.ShiftExpression) -> Any:
        value = self._evaluate(node.value)
        amount = self._evaluate(node.amount)
        return self.operations.cyclic_shift(node.operator, value, amount)

    def _eval_IndexAccess(self, node: ast.IndexAccess) -> Any:
        collection = self._evaluate(node.collection)
        index = self.casting.to_int(self._evaluate(node.index))
        if isinstance(collection, QuantumVariable):
            # indexing a quantum register yields a single-qubit view sharing
            # the underlying qubit, so gates applied to it affect the parent.
            if not 0 <= index < collection.size:
                raise QutesRuntimeError(
                    f"index {index} out of range for {collection.type} of {collection.size} qubits",
                    node.line,
                )
            hint = None
            if collection.classical_hint is not None:
                hint = (collection.classical_hint >> index) & 1
            return QuantumVariable(
                name=f"{collection.name}[{index}]",
                type=QutesType.qubit(),
                qubits=[collection.qubits[index]],
                classical_hint=hint,
            )
        if isinstance(collection, list):
            if not 0 <= index < len(collection):
                raise QutesRuntimeError(
                    f"index {index} out of range for array of length {len(collection)}", node.line
                )
            return collection[index]
        if isinstance(collection, str):
            if not 0 <= index < len(collection):
                raise QutesRuntimeError(
                    f"index {index} out of range for string of length {len(collection)}", node.line
                )
            return collection[index]
        raise QutesTypeError(
            f"cannot index a value of type {type_of_python_value(collection)}", node.line
        )

    def _eval_Assignment(self, node: ast.Assignment) -> Any:
        value = self._evaluate(node.value)
        target = node.target
        if isinstance(target, ast.Identifier):
            symbol = self.symbols.resolve(target.name, line=node.line)
            coerced = self.casting.coerce_for_declaration(value, symbol.type, target.name)
            if isinstance(coerced, QuantumVariable):
                coerced.name = target.name
            symbol.value = coerced
            return coerced
        if isinstance(target, ast.IndexAccess):
            collection = self._evaluate(target.collection)
            index = self.casting.to_int(self._evaluate(target.index))
            if not isinstance(collection, list):
                raise QutesTypeError("only array elements can be assigned by index", node.line)
            if not 0 <= index < len(collection):
                raise QutesRuntimeError(
                    f"index {index} out of range for array of length {len(collection)}", node.line
                )
            collection[index] = value
            return value
        raise QutesTypeError("invalid assignment target", node.line)

    def _eval_Call(self, node: ast.Call) -> Any:
        if not isinstance(node.callee, ast.Identifier):
            raise QutesTypeError("only named functions can be called", node.line)
        name = node.callee.name
        arguments = [self._evaluate(arg) for arg in node.arguments]
        if name in self._builtins and not self.symbols.has_function(name):
            return self._builtins[name](*arguments)
        function = self.symbols.resolve_function(name, line=node.line)
        return self._call_function(function, arguments, node.line)

    def _call_function(self, function: FunctionSymbol, arguments: List[Any], line: int) -> Any:
        if len(arguments) != function.arity:
            raise QutesTypeError(
                f"function {function.name!r} expects {function.arity} argument(s), "
                f"got {len(arguments)}",
                line,
            )
        # Function scopes chain off the global scope (lexical, not dynamic).
        caller_scope = self.symbols.current_scope
        self.symbols._current = self.symbols.global_scope
        self.symbols.push_scope()
        try:
            for parameter, argument in zip(function.parameters, arguments):
                bound = argument
                if isinstance(argument, QuantumVariable) or isinstance(argument, list):
                    # quantum values and arrays are passed by reference (paper §4)
                    bound = argument
                else:
                    bound = self.casting.coerce_for_declaration(
                        argument, parameter.type, parameter.name
                    )
                self.symbols.declare(parameter.name, parameter.type, bound, line=line)
            try:
                for statement in function.body.statements:
                    self._execute(statement)
            except _ReturnSignal as signal:
                return self._coerce_return(function, signal.value, line)
            return self._coerce_return(function, None, line)
        finally:
            self.symbols.pop_scope()
            self.symbols._current = caller_scope

    def _coerce_return(self, function: FunctionSymbol, value: Any, line: int) -> Any:
        if function.return_type.kind is TypeKind.VOID:
            return None
        if value is None:
            raise QutesTypeError(
                f"function {function.name!r} must return a value of type {function.return_type}",
                line,
            )
        return self.casting.coerce_for_declaration(value, function.return_type, function.name)

    # -- builtins ------------------------------------------------------------------------

    def _builtin_size(self, value: Any = None) -> int:
        """``size(x)``: number of qubits of a quantum value or length of an array/string."""
        if isinstance(value, QuantumVariable):
            return value.size
        if isinstance(value, (list, str)):
            return len(value)
        raise QutesTypeError("size() expects a quantum variable, array or string")

    def _builtin_sample(self, value: Any = None, shots: Any = None) -> Any:
        """``sample(x[, shots])``: most frequent measured value without collapsing ``x``."""
        if not isinstance(value, QuantumVariable):
            return value
        shots_int = self.casting.to_int(shots) if shots is not None else self.shots
        histogram = self.casting.peek_variable(value, shots=shots_int)
        best = max(histogram.items(), key=lambda kv: kv[1])[0]
        return best

    def _builtin_depth(self) -> int:
        """``depth()``: depth of the circuit logged so far."""
        return self.handler.depth()

    def _builtin_gate_count(self) -> int:
        """``gate_count()``: number of logged instructions."""
        return self.handler.size()

    def _builtin_qasm(self) -> str:
        """``qasm()``: OpenQASM 2.0 text of the circuit logged so far."""
        from ..qsim.qasm import to_qasm

        return to_qasm(self.handler.circuit)

    def _builtin_to_int(self, value: Any = None) -> int:
        """``to_int(x)``: coerce (measuring quantum operands) to an integer."""
        return self.casting.to_int(value)

    def _builtin_to_bool(self, value: Any = None) -> bool:
        """``to_bool(x)``: coerce (measuring quantum operands) to a boolean."""
        return self.casting.to_bool(value)

    def _builtin_cx(self, control: Any = None, target: Any = None) -> Any:
        """``cx(control, target)``: pairwise controlled-X between two registers."""
        return self.operations.two_qubit_gate("cx", control, target)

    def _builtin_cz(self, control: Any = None, target: Any = None) -> Any:
        """``cz(control, target)``: pairwise controlled-Z between two registers."""
        return self.operations.two_qubit_gate("cz", control, target)

    def _builtin_swap(self, left: Any = None, right: Any = None) -> Any:
        """``swap(a, b)``: pairwise SWAP between two equally sized registers."""
        return self.operations.two_qubit_gate("swap", left, right)

    def _collect_int_values(self, values: Any, builtin: str) -> List[int]:
        if not isinstance(values, list) or not values:
            raise QutesTypeError(f"{builtin}() expects a non-empty array")
        return [self.casting.to_int(v) for v in values]

    def _builtin_min_of(self, values: Any = None) -> int:
        """``min_of(xs)``: minimum of an array via Dürr--Høyer quantum search."""
        from ..algorithms.minimum_finding import find_minimum

        ints = self._collect_int_values(values, "min_of")
        result = find_minimum(
            ints, seed=int(self.handler.rng.integers(0, 2**31)), backend=self.backend
        )
        return result.value if result.success else min(ints)

    def _builtin_max_of(self, values: Any = None) -> int:
        """``max_of(xs)``: maximum of an array via Dürr--Høyer quantum search."""
        from ..algorithms.minimum_finding import find_maximum

        ints = self._collect_int_values(values, "max_of")
        result = find_maximum(
            ints, seed=int(self.handler.rng.integers(0, 2**31)), backend=self.backend
        )
        return result.value if result.success else max(ints)
