"""Operator semantics of the Qutes language.

This module implements the behaviour of every operator once operand values
are available: classical operands use plain Python semantics, quantum
operands are lowered onto circuit constructions from :mod:`repro.arithmetic`
and :mod:`repro.algorithms` through the
:class:`~repro.lang.circuit_handler.QuantumCircuitHandler`, and mixed
operands go through the :class:`~repro.lang.casting.TypeCastingHandler`
(promotion for arithmetic that can stay quantum, automatic measurement for
intrinsically classical operations such as comparisons, division and logic).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Union

from ..algorithms.grover import grover_circuit, substring_match_positions
from ..arithmetic.multiplier import build_fourier_multiplier
from ..arithmetic.qft import build_iqft, build_qft
from ..arithmetic.rotations import rotate_indices
from ..qsim.circuit import QuantumCircuit
from .casting import TypeCastingHandler
from .circuit_handler import QuantumCircuitHandler
from .errors import QutesRuntimeError, QutesTypeError
from .types import QutesType, TypeKind
from .values import QuantumVariable, qubits_needed_for_int, type_of_python_value

__all__ = ["OperationEngine"]

_GATE_NAME_MAP = {
    "hadamard": "h",
    "paulix": "x",
    "pauliy": "y",
    "pauliz": "z",
    "phase": "s",
}


class OperationEngine:
    """Evaluates unary and binary operators over runtime values."""

    def __init__(self, handler: QuantumCircuitHandler, casting: TypeCastingHandler):
        self.handler = handler
        self.casting = casting

    # ------------------------------------------------------------------ helpers

    def _is_quantum(self, value) -> bool:
        return isinstance(value, QuantumVariable)

    def _quint_operands(self, value) -> QuantumVariable:
        if isinstance(value, QuantumVariable):
            return value
        raise QutesTypeError(f"expected a quantum operand, got {type_of_python_value(value)}")

    # ------------------------------------------------------------------ gates

    def apply_named_gate(self, gate: str, value) -> QuantumVariable:
        """Apply a prefix gate keyword (``hadamard``/``paulix``/.../``phase``).

        The gate is applied to every qubit of the operand; classical operands
        are promoted to their quantum counterpart first (type promotion as
        described in the paper).  Returns the quantum variable so gate
        applications compose as expressions.
        """
        if gate == "measure":
            raise QutesRuntimeError("measure is handled by the interpreter")
        gate_name = _GATE_NAME_MAP.get(gate)
        if gate_name is None:
            raise QutesRuntimeError(f"unknown gate keyword {gate!r}")
        if not isinstance(value, QuantumVariable):
            target_type = type_of_python_value(value)
            if target_type.kind is TypeKind.ARRAY:
                raise QutesTypeError("gates cannot be applied to whole arrays; index an element")
            value = self.casting.promote_to_quantum(
                value, target_type.promoted_type(), name=f"anon_{gate}"
            )
        for qubit in value.qubits:
            self.handler.apply_gate(gate_name, [qubit])
        self._update_hint_after_gate(value, gate_name)
        return value

    def two_qubit_gate(self, gate_name: str, left, right) -> QuantumVariable:
        """Pairwise two-qubit gate between two registers (``cx``/``cz``/``swap``).

        Qubit ``i`` of *left* is paired with qubit ``i`` of *right*; both
        operands must be quantum (classical operands are promoted first) and
        have the same width.
        """
        if not isinstance(left, QuantumVariable):
            left = self.casting.promote_to_quantum(
                left, type_of_python_value(left).promoted_type(), name=f"anon_{gate_name}_c"
            )
        if not isinstance(right, QuantumVariable):
            right = self.casting.promote_to_quantum(
                right, type_of_python_value(right).promoted_type(), name=f"anon_{gate_name}_t"
            )
        if left.size != right.size:
            raise QutesTypeError(
                f"{gate_name}() needs equally sized registers, got {left.size} and {right.size}"
            )
        for control, target in zip(left.qubits, right.qubits):
            self.handler.apply_gate(gate_name, [control, target])
        if gate_name == "cx":
            if left.classical_hint is not None and right.classical_hint is not None:
                right.classical_hint ^= left.classical_hint
            else:
                right.invalidate_hint()
        elif gate_name == "swap":
            left.classical_hint, right.classical_hint = (
                right.classical_hint,
                left.classical_hint,
            )
        # cz is phase-only: hints survive untouched
        return right

    def _update_hint_after_gate(self, variable: QuantumVariable, gate_name: str) -> None:
        if variable.classical_hint is None:
            return
        if gate_name in ("z", "s"):
            return  # phase-only gates keep the basis value
        if gate_name in ("x", "y"):
            mask = (1 << variable.size) - 1
            variable.classical_hint ^= mask
            return
        variable.invalidate_hint()

    # ------------------------------------------------------------------ arithmetic

    def binary(self, operator: str, left, right):
        """Evaluate ``left <operator> right`` for ``+ - * / %``."""
        left_quantum = self._is_quantum(left)
        right_quantum = self._is_quantum(right)

        if operator in ("/", "%"):
            # division and modulo are classical operations (paper section 4):
            # quantum operands are measured automatically.
            return self._classical_arithmetic(operator, left, right)

        if not left_quantum and not right_quantum:
            return self._classical_arithmetic(operator, left, right)

        if operator == "+":
            return self._quantum_add(left, right, subtract=False)
        if operator == "-":
            return self._quantum_add(left, right, subtract=True)
        if operator == "*":
            return self._quantum_multiply(left, right)
        raise QutesTypeError(f"unsupported operator {operator!r} on quantum operands")

    def _classical_arithmetic(self, operator: str, left, right):
        if isinstance(left, str) or isinstance(right, str):
            if operator == "+" and isinstance(left, str) and isinstance(right, str):
                return left + right
            raise QutesTypeError(f"operator {operator!r} is not defined on strings")
        lhs = self.casting.to_float(left) if self._needs_float(left, right) else self.casting.to_int(left)
        rhs = self.casting.to_float(right) if self._needs_float(left, right) else self.casting.to_int(right)
        if operator == "+":
            return lhs + rhs
        if operator == "-":
            return lhs - rhs
        if operator == "*":
            return lhs * rhs
        if operator == "/":
            if rhs == 0:
                raise QutesRuntimeError("division by zero")
            result = lhs / rhs
            return result if isinstance(lhs, float) or isinstance(rhs, float) else int(lhs // rhs)
        if operator == "%":
            if rhs == 0:
                raise QutesRuntimeError("modulo by zero")
            if isinstance(lhs, float) or isinstance(rhs, float):
                return math.fmod(lhs, rhs)
            return lhs % rhs
        raise QutesTypeError(f"unknown arithmetic operator {operator!r}")

    def _needs_float(self, left, right) -> bool:
        return isinstance(left, float) or isinstance(right, float)

    # -- quantum addition / subtraction ------------------------------------------------

    def _quantum_add(self, left, right, subtract: bool) -> QuantumVariable:
        """Out-of-place quantum addition: allocate ``result`` and add into it.

        ``result`` starts as a CNOT copy of the right operand (or its encoded
        classical value) and the left operand is then added (or subtracted)
        in the Fourier basis, so superposed operands produce the correct
        entangled sum register.
        """
        # Classical-only fast paths were handled by binary(); at least one
        # operand is quantum here.  Order matters for subtraction: a - b.
        a, b = left, right
        a_quantum = self._is_quantum(a)
        b_quantum = self._is_quantum(b)

        a_size = a.size if a_quantum else qubits_needed_for_int(max(self.casting.to_int(a), 0))
        b_size = b.size if b_quantum else qubits_needed_for_int(max(self.casting.to_int(b), 0))
        result_size = max(a_size, b_size) + (0 if subtract else 1)
        result_qubits = self.handler.allocate_register("sum", result_size)
        result = QuantumVariable(
            name="sum", type=QutesType.quint(), qubits=result_qubits, classical_hint=None
        )

        # seed the result with the left operand (a)
        a_hint: Optional[int] = None
        if a_quantum:
            for position, qubit in enumerate(a.qubits):
                self.handler.apply_gate("cx", [qubit, result_qubits[position]])
            a_hint = a.classical_hint
        else:
            a_value = self.casting.to_int(a)
            self.handler.initialize_basis(a_value, result_qubits)
            a_hint = a_value

        # add (or subtract) the right operand (b) into the result
        sign = -1 if subtract else 1
        b_hint: Optional[int] = None
        if b_quantum:
            self._fourier_add_register(b.qubits, result_qubits, sign)
            b_hint = b.classical_hint
        else:
            b_value = self.casting.to_int(b)
            self._fourier_add_constant(b_value, result_qubits, sign)
            b_hint = b_value

        if a_hint is not None and b_hint is not None:
            result.classical_hint = (a_hint + sign * b_hint) % (2**result_size)
        return result

    def _fourier_add_register(self, source: Sequence[int], target: Sequence[int], sign: int) -> None:
        source = list(source)
        target = list(target)
        sub = QuantumCircuit(len(source) + len(target), name="qadd")
        src_pos = list(range(len(source)))
        tgt_pos = list(range(len(source), len(source) + len(target)))
        build_qft(sub, tgt_pos, do_swaps=False)
        for j in range(len(target)):
            for k in range(min(j + 1, len(source))):
                angle = sign * math.pi / (2 ** (j - k))
                sub.cp(angle, src_pos[k], tgt_pos[j])
        build_iqft(sub, tgt_pos, do_swaps=False)
        self.handler.append_subcircuit(sub, source + target)

    def _fourier_add_constant(self, value: int, target: Sequence[int], sign: int) -> None:
        target = list(target)
        n = len(target)
        value %= 2**n
        sub = QuantumCircuit(n, name="qadd_const")
        build_qft(sub, list(range(n)), do_swaps=False)
        for j in range(n):
            angle = 0.0
            for k in range(j + 1):
                if (value >> k) & 1:
                    angle += math.pi / (2 ** (j - k))
            if angle:
                sub.p(sign * angle, j)
        build_iqft(sub, list(range(n)), do_swaps=False)
        self.handler.append_subcircuit(sub, target)

    # -- quantum multiplication -----------------------------------------------------------

    def _quantum_multiply(self, left, right) -> QuantumVariable:
        a = left if self._is_quantum(left) else self.casting.promote_to_quantum(
            left, QutesType.quint(), name="mul_a"
        )
        b = right if self._is_quantum(right) else self.casting.promote_to_quantum(
            right, QutesType.quint(), name="mul_b"
        )
        product_size = a.size + b.size
        product_qubits = self.handler.allocate_register("prod", product_size)
        sub = QuantumCircuit(a.size + b.size + product_size, name="qmul")
        build_fourier_multiplier(
            sub,
            list(range(a.size)),
            list(range(a.size, a.size + b.size)),
            list(range(a.size + b.size, a.size + b.size + product_size)),
        )
        self.handler.append_subcircuit(sub, a.qubits + b.qubits + product_qubits)
        hint = None
        if a.classical_hint is not None and b.classical_hint is not None:
            hint = (a.classical_hint * b.classical_hint) % (2**product_size)
        return QuantumVariable(
            name="prod", type=QutesType.quint(), qubits=product_qubits, classical_hint=hint
        )

    # ------------------------------------------------------------------ shifts

    def cyclic_shift(self, operator: str, value, amount) -> QuantumVariable:
        """Cyclic register rotation (``<<`` rotate left, ``>>`` rotate right).

        Implemented as the O(1) logical relabelling of the Faro--Pavone--Viola
        construction: no gates are emitted, the variable's qubit order (and
        classical hint) are permuted in place.
        """
        k = self.casting.to_int(amount)
        if not self._is_quantum(value):
            # classical operands use ordinary (non-cyclic) bit shifts
            number = self.casting.to_int(value)
            return number << k if operator == "<<" else number >> k
        variable = self._quint_operands(value)
        n = variable.size
        if n == 0:
            return variable
        k %= n
        if k == 0:
            return variable
        if variable.type.kind is TypeKind.QUSTRING:
            # string semantics: `<< k` moves characters towards lower indices
            offset = k if operator == "<<" else n - k
        else:
            # integer semantics: `<< k` rotates the binary value towards
            # higher significance (like a bitwise rotate-left)
            offset = n - k if operator == "<<" else k
        permutation = [(i + offset) % n for i in range(n)]
        old_qubits = list(variable.qubits)
        variable.qubits = [old_qubits[p] for p in permutation]
        if variable.classical_hint is not None:
            old_hint = variable.classical_hint
            new_hint = 0
            for i, p in enumerate(permutation):
                if (old_hint >> p) & 1:
                    new_hint |= 1 << i
            variable.classical_hint = new_hint
        return variable

    # ------------------------------------------------------------------ comparisons & logic

    def compare(self, operator: str, left, right) -> bool:
        """Comparisons are classical: quantum operands are measured first."""
        lhs = self.casting.to_classical(left)
        rhs = self.casting.to_classical(right)
        if isinstance(lhs, str) != isinstance(rhs, str):
            if operator in ("==", "!="):
                return operator == "!="
            raise QutesTypeError("cannot order strings against numbers")
        if operator == "==":
            return lhs == rhs
        if operator == "!=":
            return lhs != rhs
        if operator == ">":
            return lhs > rhs
        if operator == ">=":
            return lhs >= rhs
        if operator == "<":
            return lhs < rhs
        if operator == "<=":
            return lhs <= rhs
        raise QutesTypeError(f"unknown comparison operator {operator!r}")

    def logical(self, operator: str, left_value, right_thunk):
        """Short-circuiting ``and`` / ``or`` with automatic measurement."""
        left_bool = self.casting.to_bool(left_value)
        if operator == "and":
            if not left_bool:
                return False
            return self.casting.to_bool(right_thunk())
        if operator == "or":
            if left_bool:
                return True
            return self.casting.to_bool(right_thunk())
        raise QutesTypeError(f"unknown logical operator {operator!r}")

    def unary(self, operator: str, value):
        """Unary ``-``, ``+`` and ``not`` (classical; quantum operands measured)."""
        if operator == "not":
            return not self.casting.to_bool(value)
        number = self.casting.to_float(value) if isinstance(value, float) else self.casting.to_int(value)
        if operator == "-":
            return -number
        if operator == "+":
            return number
        raise QutesTypeError(f"unknown unary operator {operator!r}")

    # ------------------------------------------------------------------ Grover search (`in`)

    def membership(self, needle, haystack) -> bool:
        """The ``in`` operator: Grover substring search over a ``qustring``.

        The pattern must be classical (or a quantum register still holding a
        known basis state); the haystack must be a ``qustring``.  The search
        allocates an index register, splices the Grover iterations into the
        program circuit and measures the index register; the measured
        position is then verified against the pattern, which also catches the
        "no match" case.
        """
        pattern = self._as_bitstring(needle, role="pattern")
        text_variable, text = self._haystack_text(haystack)

        positions = substring_match_positions(text, pattern)
        num_positions = max(1, len(text) - len(pattern) + 1)
        index_qubits_count = max(1, math.ceil(math.log2(num_positions)))

        if not positions:
            # no marked state: prepare and measure a uniform index register so
            # the circuit still reflects the attempted search, then report the
            # miss after classical verification.
            index_qubits = self.handler.allocate_register("grover_idx", index_qubits_count)
            for qubit in index_qubits:
                self.handler.apply_gate("h", [qubit])
            self.handler.measure(index_qubits, label="grover")
            return False

        # Grover search with the standard verification loop: measure a
        # candidate position, check it classically, retry a bounded number of
        # times (each attempt uses a fresh index register).
        for _attempt in range(3):
            index_qubits = self.handler.allocate_register("grover_idx", index_qubits_count)
            search = grover_circuit(index_qubits_count, positions, measure=False)
            self.handler.append_subcircuit(search, index_qubits)
            measured_position = self.handler.measure(index_qubits, label="grover")
            if measured_position < num_positions and (
                text[measured_position : measured_position + len(pattern)] == pattern
            ):
                return True
        return False

    def _as_bitstring(self, value, role: str) -> str:
        if isinstance(value, QuantumVariable):
            if value.type.kind is not TypeKind.QUSTRING:
                raise QutesTypeError(f"the {role} of 'in' must be a (qu)string")
            hinted = value.hint_as_string()
            if hinted is not None:
                return hinted
            measured = self.casting.measure_variable(value)
            return measured  # type: ignore[return-value]
        if isinstance(value, str):
            if not value or any(ch not in "01" for ch in value):
                raise QutesTypeError(f"the {role} of 'in' must be a non-empty bitstring")
            return value
        raise QutesTypeError(f"the {role} of 'in' must be a (qu)string")

    def _haystack_text(self, haystack):
        if isinstance(haystack, QuantumVariable):
            if haystack.type.kind is not TypeKind.QUSTRING:
                raise QutesTypeError("the right operand of 'in' must be a qustring")
            hinted = haystack.hint_as_string()
            if hinted is not None:
                return haystack, hinted
            return haystack, self.casting.measure_variable(haystack)
        if isinstance(haystack, str):
            if not haystack or any(ch not in "01" for ch in haystack):
                raise QutesTypeError("the right operand of 'in' must be a bitstring")
            return None, haystack
        raise QutesTypeError("the right operand of 'in' must be a (qu)string")
