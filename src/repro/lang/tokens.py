"""Token definitions for the Qutes lexer."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict

__all__ = ["TokenType", "Token", "KEYWORDS", "GATE_KEYWORDS", "TYPE_KEYWORDS"]


class TokenType(enum.Enum):
    """All token categories produced by the lexer."""

    # single / double character symbols
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMICOLON = ";"
    COLON = ":"
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    ASSIGN = "="
    EQUAL = "=="
    NOT_EQUAL = "!="
    GREATER = ">"
    GREATER_EQUAL = ">="
    LESS = "<"
    LESS_EQUAL = "<="
    SHIFT_LEFT = "<<"
    SHIFT_RIGHT = ">>"

    # literals
    INT_LITERAL = "int_literal"
    FLOAT_LITERAL = "float_literal"
    STRING_LITERAL = "string_literal"
    QUANTUM_INT_LITERAL = "quantum_int_literal"
    QUANTUM_STRING_LITERAL = "quantum_string_literal"
    KET_LITERAL = "ket_literal"
    IDENTIFIER = "identifier"

    # keywords
    BOOL = "bool"
    INT = "int"
    FLOAT = "float"
    STRING = "string"
    QUBIT = "qubit"
    QUINT = "quint"
    QUSTRING = "qustring"
    VOID = "void"
    TRUE = "true"
    FALSE = "false"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    DO = "do"
    FOREACH = "foreach"
    IN = "in"
    RETURN = "return"
    FUNCTION = "function"
    PRINT = "print"
    BARRIER = "barrier"
    AND = "and"
    OR = "or"
    NOT = "not"
    HADAMARD = "hadamard"
    PAULIX = "paulix"
    PAULIY = "pauliy"
    PAULIZ = "pauliz"
    PHASE = "phase"
    MEASURE = "measure"

    EOF = "eof"


#: keywords that start a type annotation
TYPE_KEYWORDS = {
    "bool": TokenType.BOOL,
    "int": TokenType.INT,
    "float": TokenType.FLOAT,
    "string": TokenType.STRING,
    "qubit": TokenType.QUBIT,
    "quint": TokenType.QUINT,
    "qustring": TokenType.QUSTRING,
    "void": TokenType.VOID,
}

#: keywords acting as prefix quantum operators
GATE_KEYWORDS = {
    "hadamard": TokenType.HADAMARD,
    "paulix": TokenType.PAULIX,
    "pauliy": TokenType.PAULIY,
    "pauliz": TokenType.PAULIZ,
    "phase": TokenType.PHASE,
    "measure": TokenType.MEASURE,
}

KEYWORDS: Dict[str, TokenType] = {
    **TYPE_KEYWORDS,
    **GATE_KEYWORDS,
    "true": TokenType.TRUE,
    "false": TokenType.FALSE,
    "if": TokenType.IF,
    "else": TokenType.ELSE,
    "while": TokenType.WHILE,
    "do": TokenType.DO,
    "foreach": TokenType.FOREACH,
    "in": TokenType.IN,
    "return": TokenType.RETURN,
    "function": TokenType.FUNCTION,
    "print": TokenType.PRINT,
    "barrier": TokenType.BARRIER,
    "and": TokenType.AND,
    "or": TokenType.OR,
    "not": TokenType.NOT,
}


@dataclass(frozen=True)
class Token:
    """A single lexical token.

    Attributes:
        type: the token category.
        lexeme: the raw source text of the token.
        literal: the parsed literal value (for literal tokens).
        line: 1-based line number.
        column: 1-based column of the first character.
    """

    type: TokenType
    lexeme: str
    literal: Any
    line: int
    column: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.type.name}, {self.lexeme!r}, line={self.line})"
