"""Hand-written lexer for Qutes source text.

The original implementation generates its lexer with ANTLR; this module is a
functionally equivalent scanner producing the token stream consumed by
:mod:`repro.lang.parser`.  Besides the usual C-family tokens it recognises the
quantum literal forms of the language:

* ``5q`` -- a quantum integer literal (``quint`` value),
* ``"0101"q`` -- a quantum bitstring literal (``qustring`` value),
* ``|0>``, ``|1>``, ``|+>``, ``|->`` -- ket literals for single qubits.

Comments use ``//`` (to end of line) or ``/* ... */`` blocks.
"""

from __future__ import annotations

from typing import Any, List

from .errors import QutesSyntaxError
from .tokens import KEYWORDS, Token, TokenType

__all__ = ["Lexer", "tokenize"]

_KET_STATES = {"0", "1", "+", "-"}


class Lexer:
    """Converts Qutes source text into a list of :class:`Token` objects."""

    def __init__(self, source: str):
        self.source = source
        self.tokens: List[Token] = []
        self._start = 0
        self._current = 0
        self._line = 1
        self._column = 1
        self._start_column = 1

    # -- public API -----------------------------------------------------------

    def tokenize(self) -> List[Token]:
        """Scan the whole source and return the token list (ending in EOF)."""
        while not self._at_end():
            self._start = self._current
            self._start_column = self._column
            self._scan_token()
        self.tokens.append(Token(TokenType.EOF, "", None, self._line, self._column))
        return self.tokens

    # -- scanning helpers -------------------------------------------------------

    def _at_end(self) -> bool:
        return self._current >= len(self.source)

    def _advance(self) -> str:
        ch = self.source[self._current]
        self._current += 1
        if ch == "\n":
            self._line += 1
            self._column = 1
        else:
            self._column += 1
        return ch

    def _peek(self, offset: int = 0) -> str:
        index = self._current + offset
        if index >= len(self.source):
            return "\0"
        return self.source[index]

    def _match(self, expected: str) -> bool:
        if self._peek() == expected:
            self._advance()
            return True
        return False

    def _add(self, token_type: TokenType, literal: Any = None) -> None:
        lexeme = self.source[self._start : self._current]
        self.tokens.append(Token(token_type, lexeme, literal, self._line, self._start_column))

    def _error(self, message: str) -> QutesSyntaxError:
        return QutesSyntaxError(message, self._line, self._start_column)

    # -- token scanners -----------------------------------------------------------

    def _scan_token(self) -> None:
        ch = self._advance()
        if ch in " \t\r\n":
            return
        if ch == "/":
            if self._match("/"):
                while not self._at_end() and self._peek() != "\n":
                    self._advance()
                return
            if self._match("*"):
                self._block_comment()
                return
            self._add(TokenType.SLASH)
            return

        simple = {
            "(": TokenType.LPAREN,
            ")": TokenType.RPAREN,
            "{": TokenType.LBRACE,
            "}": TokenType.RBRACE,
            "[": TokenType.LBRACKET,
            "]": TokenType.RBRACKET,
            ",": TokenType.COMMA,
            ";": TokenType.SEMICOLON,
            ":": TokenType.COLON,
            "+": TokenType.PLUS,
            "-": TokenType.MINUS,
            "*": TokenType.STAR,
            "%": TokenType.PERCENT,
        }
        if ch in simple:
            self._add(simple[ch])
            return

        if ch == "=":
            self._add(TokenType.EQUAL if self._match("=") else TokenType.ASSIGN)
            return
        if ch == "!":
            if self._match("="):
                self._add(TokenType.NOT_EQUAL)
                return
            raise self._error("unexpected character '!' (did you mean '!=' or 'not'?)")
        if ch == ">":
            if self._match(">"):
                self._add(TokenType.SHIFT_RIGHT)
            elif self._match("="):
                self._add(TokenType.GREATER_EQUAL)
            else:
                self._add(TokenType.GREATER)
            return
        if ch == "<":
            if self._match("<"):
                self._add(TokenType.SHIFT_LEFT)
            elif self._match("="):
                self._add(TokenType.LESS_EQUAL)
            else:
                self._add(TokenType.LESS)
            return
        if ch == "|":
            self._ket_literal()
            return
        if ch == '"':
            self._string_literal()
            return
        if ch.isdigit():
            self._number()
            return
        if ch.isalpha() or ch == "_":
            self._identifier()
            return
        raise self._error(f"unexpected character {ch!r}")

    def _block_comment(self) -> None:
        while not self._at_end():
            if self._peek() == "*" and self._peek(1) == "/":
                self._advance()
                self._advance()
                return
            self._advance()
        raise self._error("unterminated block comment")

    def _ket_literal(self) -> None:
        state = self._peek()
        if state not in _KET_STATES or self._peek(1) != ">":
            raise self._error("invalid ket literal (expected |0>, |1>, |+> or |->)")
        self._advance()
        self._advance()
        self._add(TokenType.KET_LITERAL, state)

    def _string_literal(self) -> None:
        chars: List[str] = []
        while not self._at_end() and self._peek() != '"':
            ch = self._advance()
            if ch == "\n":
                raise self._error("unterminated string literal")
            if ch == "\\":
                escape = self._advance()
                mapping = {"n": "\n", "t": "\t", '"': '"', "\\": "\\"}
                if escape not in mapping:
                    raise self._error(f"invalid escape sequence '\\{escape}'")
                chars.append(mapping[escape])
            else:
                chars.append(ch)
        if self._at_end():
            raise self._error("unterminated string literal")
        self._advance()  # closing quote
        value = "".join(chars)
        # a trailing `q` marks a quantum bitstring literal: "0101"q
        if self._peek() == "q" and not (self._peek(1).isalnum() or self._peek(1) == "_"):
            self._advance()
            if any(c not in "01" for c in value) or not value:
                raise self._error("quantum string literals must be non-empty bitstrings")
            self._add(TokenType.QUANTUM_STRING_LITERAL, value)
            return
        self._add(TokenType.STRING_LITERAL, value)

    def _number(self) -> None:
        while self._peek().isdigit():
            self._advance()
        is_float = False
        if self._peek() == "." and self._peek(1).isdigit():
            is_float = True
            self._advance()
            while self._peek().isdigit():
                self._advance()
        lexeme = self.source[self._start : self._current]
        # integer followed by `q` (not part of an identifier) is a quantum int
        if not is_float and self._peek() == "q" and not (self._peek(1).isalnum() or self._peek(1) == "_"):
            self._advance()
            self._add(TokenType.QUANTUM_INT_LITERAL, int(lexeme))
            return
        if is_float:
            self._add(TokenType.FLOAT_LITERAL, float(lexeme))
        else:
            self._add(TokenType.INT_LITERAL, int(lexeme))

    def _identifier(self) -> None:
        while self._peek().isalnum() or self._peek() == "_":
            self._advance()
        lexeme = self.source[self._start : self._current]
        token_type = KEYWORDS.get(lexeme)
        if token_type is not None:
            literal = {"true": True, "false": False}.get(lexeme)
            self._add(token_type, literal)
        else:
            self._add(TokenType.IDENTIFIER)


def tokenize(source: str) -> List[Token]:
    """Convenience wrapper returning the token list for *source*."""
    return Lexer(source).tokenize()
