"""User-facing compile / run API of the Qutes implementation.

``run_source`` is the one-call entry point used by the CLI, the examples and
the benchmarks: it parses, type-checks (via the declaration pass) and executes
a program, returning a :class:`QutesExecutionResult` that bundles the printed
output, final variable bindings, the logged quantum circuit and its metrics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..qsim.circuit import QuantumCircuit
from . import ast_nodes as ast
from .interpreter import Interpreter
from .parser import parse
from .symbols import SymbolTable
from .values import QuantumVariable

__all__ = [
    "CompiledProgram",
    "QutesExecutionResult",
    "parse_source",
    "compile_source",
    "run_source",
    "run_file",
]


@dataclass
class CompiledProgram:
    """A parsed (and declaration-checked) Qutes program."""

    source: str
    ast: ast.Program

    def run(
        self, shots: int = 1024, seed: Optional[int] = None, backend=None
    ) -> "QutesExecutionResult":
        """Execute the compiled program.

        *backend* selects the execution backend used for the program's
        statistics paths (``sample``, ``min_of``/``max_of``); it accepts a
        :class:`repro.qsim.backends.Backend` instance or a registry name
        such as ``"density_matrix"``.
        """
        return _execute(self.source, self.ast, shots=shots, seed=seed, backend=backend)


@dataclass
class QutesExecutionResult:
    """Everything produced by one execution of a Qutes program."""

    output: List[str]
    variables: Dict[str, Any]
    circuit: QuantumCircuit
    measurements: List[Dict[str, Any]]
    gate_counts: Dict[str, int] = field(default_factory=dict)
    depth: int = 0
    num_qubits: int = 0

    @property
    def printed(self) -> str:
        """The program's print output joined with newlines."""
        return "\n".join(self.output)

    def variable(self, name: str) -> Any:
        """Final value of the top-level variable *name*."""
        return self.variables[name]

    def __repr__(self) -> str:
        return (
            f"QutesExecutionResult(qubits={self.num_qubits}, depth={self.depth}, "
            f"prints={len(self.output)})"
        )


def parse_source(source: str) -> ast.Program:
    """Parse Qutes *source* and return its AST."""
    return parse(source)


def compile_source(source: str) -> CompiledProgram:
    """Parse *source* into a reusable :class:`CompiledProgram`."""
    return CompiledProgram(source=source, ast=parse(source))


def _execute(
    source: str,
    tree: ast.Program,
    shots: int,
    seed: Optional[int],
    backend=None,
) -> QutesExecutionResult:
    interpreter = Interpreter(shots=shots, seed=seed, backend=backend)
    interpreter.run(tree)
    variables: Dict[str, Any] = {}
    for name, symbol in interpreter.symbols.global_scope.symbols.items():
        value = symbol.value
        variables[name] = value
    return QutesExecutionResult(
        output=list(interpreter.output),
        variables=variables,
        circuit=interpreter.handler.circuit,
        measurements=list(interpreter.handler.measurements),
        gate_counts=interpreter.handler.gate_counts(),
        depth=interpreter.handler.depth(),
        num_qubits=interpreter.handler.num_qubits,
    )


def run_source(
    source: str, shots: int = 1024, seed: Optional[int] = None, backend=None
) -> QutesExecutionResult:
    """Parse and execute Qutes *source* text.

    *backend* (a :class:`repro.qsim.backends.Backend` or registry name)
    selects the engine behind the program's statistics builtins.
    """
    return _execute(source, parse(source), shots=shots, seed=seed, backend=backend)


def run_file(
    path: str, shots: int = 1024, seed: Optional[int] = None, backend=None
) -> QutesExecutionResult:
    """Parse and execute the Qutes program stored at *path*."""
    with open(path, "r", encoding="utf-8") as handle:
        return run_source(handle.read(), shots=shots, seed=seed, backend=backend)
