"""The ``QuantumCircuitHandler``: the bridge between the language and qsim.

The handler plays the role described in Section 3 of the paper: while the
interpreter traverses the AST it *logs* every quantum operation into a
:class:`~repro.qsim.circuit.QuantumCircuit` (one quantum register per
declared variable) and, at the same time, applies the operation to a live
statevector so that automatic measurements -- triggered whenever quantum data
flows into a classical context -- can be served immediately with genuine
collapse semantics.

The logged circuit is what gets exported (QASM, draw, metrics); the live
state is what drives execution.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from ..qsim import gates, kernels
from ..qsim.backends import Backend
from ..qsim.circuit import QuantumCircuit
from ..qsim.instruction import Initialize, Measure
from ..qsim.registers import ClassicalRegister, QuantumRegister
from ..qsim.statevector import Statevector
from .errors import QutesRuntimeError

__all__ = ["QuantumCircuitHandler"]


class QuantumCircuitHandler:
    """Owns the program's quantum registers, circuit log and live state.

    An optional execution *backend* (see :mod:`repro.qsim.backends`) reroutes
    the non-collapsing statistics path: :meth:`sample` then replays the
    logged circuit through the backend instead of peeking at the live
    statevector, which is what makes ``--backend density_matrix`` runs
    produce exact-channel sampling statistics.  Gate application and genuine
    collapse (:meth:`measure`) always stay on the live state -- that is the
    execution model of the language.
    """

    def __init__(self, seed: Optional[int] = None, backend: Optional[Backend] = None):
        self.circuit = QuantumCircuit(name="qutes_program")
        self.state = Statevector.zero_state(0)
        self.rng = np.random.default_rng(seed)
        self.backend = backend
        self._register_counter = 0
        self._measure_counter = 0
        self.measurements: List[Dict[str, object]] = []

    # -- register allocation ------------------------------------------------------

    @property
    def num_qubits(self) -> int:
        """Total number of qubits allocated so far."""
        return self.circuit.num_qubits

    def allocate_register(self, base_name: str, num_qubits: int) -> List[int]:
        """Allocate a fresh register and return the global qubit indices."""
        if num_qubits <= 0:
            raise QutesRuntimeError("quantum registers must have at least one qubit")
        self._register_counter += 1
        name = f"{base_name}_{self._register_counter}"
        register = QuantumRegister(num_qubits, name)
        start = self.circuit.num_qubits
        self.circuit.add_register(register)
        self.state = self.state.expand(num_qubits)
        return list(range(start, start + num_qubits))

    # -- gate application ------------------------------------------------------------

    def apply_gate(self, name: str, qubits: Sequence[int], params: Sequence[float] = ()) -> None:
        """Append gate *name* on *qubits* to the log and the live state."""
        qubits = list(qubits)
        params = list(params)
        builder = getattr(self.circuit, name, None)
        # reject unknown names before touching the log, so a failure can
        # never leave the logged circuit diverged from the live state
        if builder is None or name not in gates.GATE_REGISTRY:
            raise QutesRuntimeError(f"unsupported gate {name!r}")
        builder(*params, *qubits)
        if not kernels.apply_named_gate(self.state, name, params, qubits):
            self.state.apply_unitary(gates.gate_matrix(name, params), qubits)

    def apply_mcz(self, controls: Sequence[int], target: int) -> None:
        """Multi-controlled Z (used by oracle constructions)."""
        controls = list(controls)
        self.circuit.mcz(controls, target)
        # one phase multiply over the control-satisfied slice instead of a
        # dense 2^(k+1) x 2^(k+1) unitary
        self.state.apply_controlled(gates.Z, controls, target)

    def apply_mcx(self, controls: Sequence[int], target: int) -> None:
        """Multi-controlled X."""
        controls = list(controls)
        self.circuit.mcx(controls, target)
        self.state.apply_controlled(gates.X, controls, target)

    def initialize(self, amplitudes: Sequence[complex], qubits: Sequence[int]) -> None:
        """Initialise freshly allocated *qubits* to the given amplitude vector."""
        qubits = list(qubits)
        amplitudes = np.asarray(amplitudes, dtype=complex)
        self.circuit.initialize(amplitudes, qubits)
        self.state.initialize_qubits(amplitudes, qubits)

    def initialize_basis(self, value: int, qubits: Sequence[int]) -> None:
        """Encode the classical integer *value* into *qubits* with X gates."""
        qubits = list(qubits)
        if not 0 <= value < 2 ** len(qubits):
            raise QutesRuntimeError(
                f"value {value} does not fit into {len(qubits)} qubits"
            )
        for position, qubit in enumerate(qubits):
            if (value >> position) & 1:
                self.apply_gate("x", [qubit])

    def append_subcircuit(self, sub: QuantumCircuit, qubit_map: Sequence[int]) -> None:
        """Splice a standalone builder circuit onto the program.

        *qubit_map* maps the sub-circuit's qubit positions onto global qubit
        indices.  Measurements inside sub-circuits are not supported (the
        language performs measurements only through :meth:`measure`).
        """
        qubit_map = list(qubit_map)
        if len(qubit_map) != sub.num_qubits:
            raise QutesRuntimeError("qubit map size does not match sub-circuit")
        for instr in sub.data:
            op = instr.operation
            targets = [qubit_map[sub.qubit_index(q)] for q in instr.qubits]
            if isinstance(op, Measure):
                raise QutesRuntimeError("sub-circuits must not contain measurements")
            if isinstance(op, Initialize):
                self.circuit.append(op.copy(), targets)
                self.state.initialize_qubits(op.statevector, targets)
                continue
            if op.name == "barrier":
                self.circuit.append(op.copy(), targets)
                continue
            if not op.is_unitary:
                raise QutesRuntimeError(f"cannot splice instruction {op.name!r}")
            self.circuit.append(op.copy(), targets)
            if not kernels.apply_instruction(self.state, op, targets):
                self.state.apply_unitary(op.to_matrix(), targets)

    def barrier(self) -> None:
        """Insert a barrier over every allocated qubit."""
        if self.circuit.num_qubits:
            self.circuit.barrier()

    # -- measurement --------------------------------------------------------------------

    def measure(self, qubits: Sequence[int], label: str = "m") -> int:
        """Measure *qubits*, collapse the live state, log the measurement.

        Returns the little-endian integer outcome.
        """
        qubits = list(qubits)
        if not qubits:
            raise QutesRuntimeError("cannot measure an empty register")
        self._measure_counter += 1
        creg = ClassicalRegister(len(qubits), f"{label}_{self._measure_counter}")
        self.circuit.add_register(creg)
        self.circuit.measure(qubits, list(creg))
        outcome = self.state.measure(qubits, rng=self.rng)
        self.measurements.append(
            {"label": creg.name, "qubits": qubits, "outcome": outcome}
        )
        return outcome

    def sample(self, qubits: Sequence[int], shots: int = 1024) -> Dict[int, int]:
        """Sample measurement statistics without collapsing the live state.

        With an execution backend attached (and no collapse logged yet) the
        statistics come from replaying the logged circuit through that
        backend; otherwise they are drawn from the live statevector.  Once a
        measurement has collapsed the live state, a replay would no longer be
        conditioned on the realized outcome, so the live state is always used
        from that point on.
        """
        if self.backend is not None and not self.circuit.has_measurements():
            return self.replay_counts(qubits, shots=shots)
        return self.state.sample_counts(list(qubits), shots=shots, rng=self.rng)

    def replay_counts(
        self,
        qubits: Sequence[int],
        shots: int = 1024,
        backend: Optional[Backend] = None,
        seed: Optional[int] = None,
    ) -> Dict[int, int]:
        """Outcome histogram for *qubits* by replaying the logged circuit.

        The logged circuit is copied, a fresh classical register measuring
        *qubits* is appended, and the copy is executed through *backend* (or
        the handler's attached one).  Keys are little-endian integers over
        *qubits*, matching :meth:`sample`.
        """
        backend = backend if backend is not None else self.backend
        if backend is None:
            raise QutesRuntimeError("replay_counts needs an execution backend")
        qubits = list(qubits)
        if not qubits:
            raise QutesRuntimeError("cannot sample an empty register")
        replay = self.circuit.copy()
        self._measure_counter += 1
        creg = ClassicalRegister(len(qubits), f"replay_{self._measure_counter}")
        replay.add_register(creg)
        replay.measure(qubits, list(creg))
        num_clbits = replay.num_clbits
        base = num_clbits - len(qubits)  # the fresh creg holds the top clbits
        experiment = backend.run(replay, shots=shots, seed=seed).result()[0]
        counts: Dict[int, int] = {}
        for key, count in experiment.counts.items():
            value = 0
            for position in range(len(qubits)):
                if key[num_clbits - 1 - (base + position)] == "1":
                    value |= 1 << position
            counts[value] = counts.get(value, 0) + count
        return counts

    def probabilities(self, qubits: Sequence[int]) -> np.ndarray:
        """Outcome probabilities for *qubits* under the live state."""
        return self.state.probabilities(list(qubits))

    # -- inspection ----------------------------------------------------------------------

    def snapshot(self) -> Statevector:
        """A copy of the current live statevector."""
        return self.state.copy()

    def gate_counts(self) -> Dict[str, int]:
        """Histogram of logged instruction names."""
        return self.circuit.count_ops()

    def depth(self) -> int:
        """Depth of the logged circuit."""
        return self.circuit.depth()

    def size(self) -> int:
        """Number of logged instructions (excluding barriers)."""
        return self.circuit.size()
