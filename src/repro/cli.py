"""Command-line runner: ``qutes program.qut`` plus the execution service.

Options mirror what a user of the original implementation gets from its
runner scripts: print the program output, optionally dump the generated
circuit (text or OpenQASM 2.0) and the final values of global variables.

The durable execution service (see ``docs/service.md``) is exposed as
verbs -- ``qutes submit / status / result / cancel / worker / queue-stats /
trace / metrics / purge`` -- sharing the familiar
``--backend/--noise/--shots/--seed`` flags with the direct runner.  The
observability verbs (``trace``, ``metrics``; guide in
``docs/observability.md``) read the per-job telemetry artifacts workers
record through :mod:`repro.qsim.telemetry`.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .lang import QutesError, run_file
from .qsim.backends import NOISE_CHANNELS, build_noisy_backend, resolve_backend
from .qsim.exceptions import BackendError, CircuitError, QasmError, SimulationError
from .qsim.qasm import from_qasm_file, to_qasm

__all__ = [
    "main",
    "build_arg_parser",
    "build_service_parser",
    "build_lint_parser",
    "SERVICE_VERBS",
]

#: first-positional-argument verbs that dispatch to the execution service
SERVICE_VERBS = (
    "submit",
    "status",
    "result",
    "cancel",
    "worker",
    "queue-stats",
    "trace",
    "metrics",
    "purge",
)

#: default service database (override per call with --db)
DEFAULT_SERVICE_DB = os.environ.get("QUTES_SERVICE_DB", "qutes-service.db")


def build_arg_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="qutes",
        description="Run a Qutes program on the bundled simulation backends.",
        epilog="Extra verbs: `qutes lint FILE...` statically analyzes circuits "
        "without running them (docs/analysis.md); service verbs (durable job "
        "queue; see docs/service.md): "
        + " / ".join(SERVICE_VERBS)
        + ".  Run `qutes <verb> --help` for their options.",
    )
    parser.add_argument("program", nargs="?", default=None, help="path to the .qut source file")
    parser.add_argument(
        "--from-qasm",
        default=None,
        metavar="FILE",
        help="run an OpenQASM 2.0 or OpenQASM 3 (subset) circuit file instead "
        "of a Qutes program (composes with --backend/--noise/--shots/--seed; "
        "circuits without measurements get a final measure-all)",
    )
    parser.add_argument("--seed", type=int, default=None, help="RNG seed for measurements")
    parser.add_argument("--shots", type=int, default=1024, help="shots used by sample()")
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="execution backend for the statistics builtins (sample, min_of, "
        "max_of); see --list-backends",
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="print the registered execution backends and exit",
    )
    parser.add_argument(
        "--array-ops",
        default=None,
        metavar="NAME",
        help="array-ops backend the kernels compute through (default: numpy, "
        "or $QSIM_ARRAY_OPS); see docs/kernels.md for registering an "
        "accelerated module",
    )
    parser.add_argument(
        "--noise",
        type=float,
        default=None,
        metavar="P",
        help="inject noise with probability P per qubit touched by each gate "
        "into the selected backend (statevector and stabilizer take the "
        "trajectory/Pauli-frame model, density_matrix the exact Kraus channel)",
    )
    parser.add_argument(
        "--noise-model",
        default="depolarizing",
        choices=sorted(NOISE_CHANNELS),
        help="noise channel used with --noise (default: depolarizing)",
    )
    parser.add_argument(
        "--lint",
        nargs="?",
        const="error",
        default=None,
        choices=("error", "warn"),
        metavar="SEVERITY",
        help="statically analyze the --from-qasm circuit before running and "
        "abort when findings reach SEVERITY ('error' when the flag is bare, "
        "or 'warn'); see docs/analysis.md",
    )
    parser.add_argument("--show-circuit", action="store_true", help="print the logged circuit")
    parser.add_argument("--qasm", action="store_true", help="print the OpenQASM 2.0 export")
    parser.add_argument("--show-variables", action="store_true", help="print final global variables")
    parser.add_argument("--ast", action="store_true", help="print the parsed AST and exit")
    return parser


def build_service_parser() -> argparse.ArgumentParser:
    """Argument parser for the service verbs (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="qutes",
        description="Durable execution service: submit jobs, run workers, collect results.",
    )
    verbs = parser.add_subparsers(dest="verb", required=True)

    def add_db(sub: argparse.ArgumentParser) -> None:
        sub.add_argument(
            "--db",
            default=DEFAULT_SERVICE_DB,
            help="service database path (default: %(default)s, or $QUTES_SERVICE_DB)",
        )

    submit = verbs.add_parser(
        "submit", help="queue OpenQASM 2.0 circuit files as one durable job"
    )
    submit.add_argument("files", nargs="+", metavar="FILE", help="OpenQASM 2.0 circuit files")
    add_db(submit)
    submit.add_argument("--backend", default="statevector", metavar="NAME")
    submit.add_argument("--shots", type=int, default=1024)
    submit.add_argument("--seed", type=int, default=None)
    submit.add_argument("--noise", type=float, default=None, metavar="P")
    submit.add_argument("--noise-model", default="depolarizing", choices=sorted(NOISE_CHANNELS))
    submit.add_argument(
        "--max-attempts", type=int, default=3, help="retry budget before FAILED"
    )
    submit.add_argument(
        "--no-lint",
        action="store_true",
        help="skip submit-time static analysis (jobs queue unvalidated and "
        "no diagnostics artifact is stored)",
    )

    status = verbs.add_parser("status", help="print a job's lifecycle state")
    status.add_argument("job_id")
    add_db(status)

    result = verbs.add_parser("result", help="print a finished job's counts")
    result.add_argument("job_id")
    add_db(result)
    result.add_argument(
        "--wait",
        type=float,
        default=None,
        metavar="SECONDS",
        help="poll until the job is terminal (at most SECONDS)",
    )

    cancel = verbs.add_parser("cancel", help="cancel a queued or running job")
    cancel.add_argument("job_id")
    add_db(cancel)

    worker = verbs.add_parser("worker", help="run worker processes draining the queue")
    add_db(worker)
    worker.add_argument("--workers", type=int, default=1)
    worker.add_argument("--burst", action="store_true", help="exit when the queue is empty")
    worker.add_argument("--max-jobs", type=int, default=None)
    worker.add_argument("--lease", type=float, default=None, help="lease timeout (s)")
    worker.add_argument("--poll", type=float, default=None, help="idle poll interval (s)")
    worker.add_argument("--retry-delay", type=float, default=None, help="retry backoff base (s)")
    worker.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="more service logging (repeatable; -v enables DEBUG)",
    )
    worker.add_argument(
        "-q",
        "--quiet",
        action="count",
        default=0,
        help="less service logging (repeatable; -q shows warnings only)",
    )

    stats = verbs.add_parser("queue-stats", help="print queue depth and cache statistics")
    add_db(stats)

    trace = verbs.add_parser(
        "trace", help="print a finished job's execution trace (span tree)"
    )
    trace.add_argument("job_id")
    add_db(trace)

    metrics = verbs.add_parser(
        "metrics", help="print metrics aggregated across finished jobs"
    )
    add_db(metrics)
    metrics.add_argument(
        "--format",
        dest="fmt",
        default="prometheus",
        choices=("prometheus", "json"),
        help="output format (default: %(default)s)",
    )

    purge = verbs.add_parser(
        "purge", help="delete DONE/CANCELLED jobs older than a TTL"
    )
    add_db(purge)
    purge.add_argument(
        "--older-than",
        type=float,
        default=0.0,
        metavar="SECONDS",
        help="only delete jobs last updated at least SECONDS ago (default: all)",
    )
    return parser


def build_lint_parser() -> argparse.ArgumentParser:
    """Argument parser for the ``lint`` verb (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="qutes lint",
        description="Statically analyze OpenQASM 2.0/3 circuit files without "
        "running them; see docs/analysis.md for the diagnostic catalogue.",
    )
    parser.add_argument("files", nargs="+", metavar="FILE", help="OpenQASM 2.0/3 circuit files")
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="also check backend compatibility (Clifford-only restriction, "
        "state-memory budget) against NAME",
    )
    parser.add_argument("--shots", type=int, default=None, help="shot count to validate")
    parser.add_argument(
        "--noise", type=float, default=None, metavar="P", help="noise probability to validate"
    )
    parser.add_argument(
        "--noise-model",
        default=None,
        help="noise channel to validate with --noise (default: depolarizing)",
    )
    parser.add_argument(
        "--min-severity",
        default="info",
        choices=("info", "warn", "warning", "error"),
        help="hide findings below this severity (default: %(default)s)",
    )
    parser.add_argument(
        "--format",
        dest="fmt",
        default="text",
        choices=("text", "json"),
        help="output format (default: %(default)s)",
    )
    return parser


def _parse_error_report(path: str, exc: QasmError):
    """An :class:`AnalysisReport` carrying a single ``QA001`` for *exc*."""
    from .qsim.analysis import AnalysisReport, Diagnostic, Severity
    from .qsim.circuit import SourceSpan

    span = None
    message = str(exc)
    if exc.line is not None:
        span = SourceSpan(exc.line, exc.column or 1, path)
        # QasmError prefixes its message with the position; the span already
        # carries it, so strip the prefix instead of printing it twice
        prefix = f"line {exc.line}, column {exc.column}: "
        if message.startswith(prefix):
            message = message[len(prefix):]
    diagnostic = Diagnostic(
        "QA001",
        Severity.ERROR,
        f"cannot parse: {message}",
        span=span,
        source="parser",
    )
    return AnalysisReport(path, [diagnostic])


def _lint_main(argv: List[str]) -> int:
    """The ``lint`` verb: analyze files, report findings, exit non-zero on errors."""
    import json

    from .qsim.analysis import AnalysisTarget, Severity, analyze

    args = build_lint_parser().parse_args(argv)
    min_severity = Severity.parse(args.min_severity)
    target = None
    if args.backend is not None or args.noise is not None or args.shots is not None:
        target = AnalysisTarget(
            backend=args.backend,
            shots=args.shots,
            noise_p=args.noise,
            noise_channel=(args.noise_model or "depolarizing")
            if args.noise is not None
            else None,
        )
    reports = []
    for path in args.files:
        try:
            circuit = from_qasm_file(path)
        except FileNotFoundError:
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        except UnicodeDecodeError:
            print(f"error: {path} is not a UTF-8 text file", file=sys.stderr)
            return 2
        except QasmError as exc:
            reports.append(_parse_error_report(path, exc))
            continue
        reports.append(analyze(circuit, target))
    if args.fmt == "json":
        print(json.dumps([report.to_dict() for report in reports], indent=2))
    else:
        for report in reports:
            text = report.format(min_severity=min_severity)
            if text:
                print(text)
    return 1 if any(report.has_errors for report in reports) else 0


def _service_submit(args: argparse.Namespace) -> int:
    from .qsim.service import BatchPayload, JobStore

    circuits = []
    for path in args.files:
        try:
            circuits.append(from_qasm_file(path))
        except FileNotFoundError:
            print(f"error: no such file: {path}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"error: cannot read {path}: {exc}", file=sys.stderr)
            return 2
        except QasmError as exc:
            print(f"error: {path}: {exc}", file=sys.stderr)
            return 1
    from .qsim.service import ServiceError, submit_payload
    from .qsim.service.validation import analysis_target

    try:
        payload = BatchPayload.from_circuits(
            circuits,
            shots=args.shots,
            seed=args.seed,
            backend=args.backend,
            noise_p=args.noise,
            noise_channel=args.noise_model,
        )
        reports = None
        if not args.no_lint:
            # analyze the circuits as imported (not the payload's QASM
            # round-trip) so spans point at the user's files
            from .qsim.analysis import Severity, analyze

            target = analysis_target(payload)
            reports = [analyze(circuit, target) for circuit in circuits]
            for report in reports:
                findings = report.format(min_severity=Severity.WARNING)
                if findings:
                    print(findings, file=sys.stderr)
        with JobStore(args.db) as store:
            job_id, _, rejected = submit_payload(
                store,
                payload,
                max_attempts=args.max_attempts,
                reports=reports,
                validate=not args.no_lint,
            )
    except (CircuitError, BackendError, SimulationError, ServiceError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    print(job_id)
    if rejected:
        print(
            f"error: job {job_id} rejected by static analysis (see findings "
            "above; --no-lint submits anyway)",
            file=sys.stderr,
        )
        return 1
    return 0


def _print_counts(result_dict: dict) -> None:
    experiments = result_dict.get("results", [])
    for experiment in experiments:
        if len(experiments) > 1:
            print(f"--- {experiment.get('name', '?')} ---")
        for bitstring, count in sorted(
            experiment.get("counts", {}).items(), key=lambda kv: (-kv[1], kv[0])
        ):
            print(f"{bitstring} {count}")


def _service_other(args: argparse.Namespace) -> int:
    import time as _time

    from .qsim.service import JobStore, ServiceError, configure_logging, worker_loop
    from .qsim.service.worker import WorkerFleet

    if args.verb == "worker":
        configure_logging(args.verbose - args.quiet)
        kwargs = {
            key: value
            for key, value in (
                ("lease_timeout", args.lease),
                ("poll_interval", args.poll),
                ("retry_delay", args.retry_delay),
                ("max_jobs", args.max_jobs),
            )
            if value is not None
        }
        kwargs["burst"] = args.burst
        if args.workers <= 1:
            processed = worker_loop(args.db, **kwargs)
            print(f"worker processed {processed} job(s)")
        else:
            fleet = WorkerFleet(args.db, workers=args.workers, **kwargs)
            fleet.start()
            fleet.join()
        return 0

    try:
        with JobStore(args.db) as store:
            if args.verb == "status":
                record = store.get(args.job_id)
                line = f"{record.job_id} {record.state} attempts={record.attempts}"
                if record.worker_id:
                    line += f" worker={record.worker_id}"
                print(line)
                if record.diagnostics:
                    from .qsim.analysis import AnalysisReport

                    reports = [
                        AnalysisReport.from_dict(entry)
                        for entry in record.diagnostics_dict()["reports"]
                    ]
                    errors = sum(len(r.errors) for r in reports)
                    warnings = sum(len(r.warnings) for r in reports)
                    print(
                        f"diagnostics: {errors} error(s), {warnings} warning(s) "
                        f"across {len(reports)} circuit(s)"
                    )
                if record.state == "FAILED" and record.error:
                    print(record.error.rstrip().splitlines()[-1], file=sys.stderr)
                return 0
            if args.verb == "cancel":
                if store.cancel(args.job_id):
                    print(f"{args.job_id} CANCELLED")
                    return 0
                record = store.get(args.job_id)
                print(
                    f"error: job is already terminal ({record.state})", file=sys.stderr
                )
                return 1
            if args.verb == "queue-stats":
                stats = store.stats()
                for state, count in stats["states"].items():
                    print(f"{state} {count}")
                print(f"cache-entries {stats['cache_entries']}")
                print(f"cache-disk-hits {stats['cache_disk_hits']}")
                job_cache = stats["job_cache"]
                print(f"job-cache-hits {job_cache['hits']}")
                print(f"job-cache-misses {job_cache['misses']}")
                rate = job_cache["hit_rate"]
                print(f"job-cache-hit-rate {'n/a' if rate is None else f'{rate:.3f}'}")
                return 0
            if args.verb == "trace":
                from .qsim import telemetry

                record = store.get(args.job_id)
                artifact = record.telemetry_dict()
                print(f"job {record.job_id} state={record.state}")
                print(
                    telemetry.format_span_tree(
                        artifact["trace"], artifact.get("duration_s")
                    )
                )
                return 0
            if args.verb == "metrics":
                from .qsim.telemetry import export as telemetry_export

                snapshot = store.aggregate_telemetry_metrics()
                if args.fmt == "json":
                    print(telemetry_export.to_json(snapshot))
                else:
                    print(telemetry_export.to_prometheus(snapshot))
                return 0
            if args.verb == "purge":
                deleted = store.purge(older_than=args.older_than)
                print(f"purged {deleted} job(s)")
                return 0
            # result
            record = store.get(args.job_id)
            deadline = None if args.wait is None else _time.monotonic() + args.wait
            while not record.is_terminal:
                if deadline is None or _time.monotonic() >= deadline:
                    print(
                        f"error: job {args.job_id} not finished (state {record.state})",
                        file=sys.stderr,
                    )
                    return 1
                _time.sleep(0.1)
                record = store.get(args.job_id)
            if record.state != "DONE":
                print(f"error: job ended {record.state}", file=sys.stderr)
                if record.error:
                    print(record.error.rstrip().splitlines()[-1], file=sys.stderr)
                return 1
            _print_counts(record.result_dict())
            return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _service_main(argv: List[str]) -> int:
    args = build_service_parser().parse_args(argv)
    if args.verb == "submit":
        return _service_submit(args)
    return _service_other(args)


def _run_qasm_file(args: argparse.Namespace) -> int:
    """Execute an imported OpenQASM 2.0 circuit on the selected backend."""
    try:
        circuit = from_qasm_file(args.from_qasm)
    except FileNotFoundError:
        print(f"error: no such file: {args.from_qasm}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot read {args.from_qasm}: {exc}", file=sys.stderr)
        return 2
    except UnicodeDecodeError:
        print(f"error: {args.from_qasm} is not a UTF-8 text file", file=sys.stderr)
        return 1
    except QasmError as exc:
        print(f"error: {args.from_qasm}: {exc}", file=sys.stderr)
        return 1
    if args.show_circuit:
        print("--- circuit ---")
        print(circuit.draw())
    if args.qasm:
        print("--- qasm ---")
        try:
            print(to_qasm(circuit), end="")
        except Exception as exc:  # defensive: every importable gate exports today
            print(f"(cannot export to OpenQASM 2.0: {exc})", file=sys.stderr)
    if circuit.num_qubits == 0:
        # a header-only program is valid QASM; there is just nothing to run
        print(f"note: {args.from_qasm} declares no qubits; nothing to run", file=sys.stderr)
        return 0
    if not circuit.has_measurements():
        # mirror what hardware toolchains do with measurement-free circuits:
        # sample every qubit at the end instead of returning nothing
        circuit.measure_all()
    if args.lint is not None:
        # analyze the exact circuit about to run (after measure-all
        # normalization) against the run config the flags describe
        from .qsim.analysis import AnalysisTarget, Severity, analyze

        target = AnalysisTarget(
            backend=args.backend,
            shots=args.shots,
            noise_p=args.noise,
            noise_channel=args.noise_model if args.noise is not None else None,
        )
        report = analyze(circuit, target)
        threshold = Severity.parse(args.lint)
        findings = report.format(min_severity=Severity.WARNING)
        if findings:
            print(findings, file=sys.stderr)
        if report.at_least(threshold):
            print(
                f"error: {args.from_qasm} failed static analysis at severity "
                f"{threshold.label!r}; drop --lint to run anyway",
                file=sys.stderr,
            )
            return 1
    try:
        if args.noise is not None:
            backend = build_noisy_backend(args.backend, args.noise, args.noise_model, args.seed)
        else:
            backend = resolve_backend(args.backend, default_seed=args.seed)
        counts = backend.run(circuit, shots=args.shots).result().get_counts()
    except (BackendError, SimulationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for bitstring, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
        print(f"{bitstring} {count}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by the ``qutes`` console script."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # the downstream consumer (e.g. `qutes --from-qasm ... | head`)
        # closed the pipe mid-print.  Swap both streams for /dev/null so the
        # interpreter's exit-time flush cannot raise again, and exit with
        # the conventional SIGPIPE status (like cat/grep) — never 0, since
        # the broken stream may have been stderr carrying an error report
        devnull = os.open(os.devnull, os.O_WRONLY)
        for stream in (sys.stdout, sys.stderr):
            try:
                os.dup2(devnull, stream.fileno())
            except (OSError, ValueError):
                pass
        return 141


def _main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "lint":
        return _lint_main(list(argv[1:]))
    if argv and argv[0] in SERVICE_VERBS:
        return _service_main(list(argv))
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.array_ops is not None:
        from .qsim.ops import set_default_ops

        try:
            set_default_ops(args.array_ops)
        except SimulationError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    elif os.environ.get("QSIM_ARRAY_OPS"):
        # validate the environment selection eagerly too, so a typo in
        # $QSIM_ARRAY_OPS fails here with the registered names instead of
        # deep inside the first kernel call
        from .qsim.ops import get_ops

        try:
            get_ops()
        except SimulationError as exc:
            print(f"error: $QSIM_ARRAY_OPS: {exc}", file=sys.stderr)
            return 1
    if args.list_backends:
        from .qsim.backends import list_backends

        for name in list_backends():
            print(name)
        return 0
    if args.from_qasm is not None:
        if args.program is not None:
            parser.error("pass either a .qut program or --from-qasm FILE, not both")
        if args.ast:
            parser.error("--ast applies to Qutes programs, not --from-qasm input")
        if args.show_variables:
            parser.error("--show-variables applies to Qutes programs, not --from-qasm input")
        return _run_qasm_file(args)
    if args.lint is not None:
        parser.error("--lint applies to --from-qasm input (use `qutes lint FILE...` standalone)")
    if args.program is None:
        parser.error("the program argument is required (or use --list-backends / --from-qasm)")
    if args.ast:
        from .lang.ast_printer import dump_ast
        from .lang.parser import parse

        try:
            with open(args.program, "r", encoding="utf-8") as handle:
                print(dump_ast(parse(handle.read())))
            return 0
        except FileNotFoundError:
            print(f"error: no such file: {args.program}", file=sys.stderr)
            return 2
        except QutesError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    backend = args.backend
    try:
        if args.noise is not None:
            backend = build_noisy_backend(args.backend, args.noise, args.noise_model, args.seed)
        result = run_file(args.program, shots=args.shots, seed=args.seed, backend=backend)
    except FileNotFoundError:
        print(f"error: no such file: {args.program}", file=sys.stderr)
        return 2
    except (QutesError, BackendError, SimulationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if result.output:
        print(result.printed)
    if args.show_variables:
        print("--- variables ---")
        for name, value in result.variables.items():
            print(f"{name} = {value}")
    if args.show_circuit:
        print("--- circuit ---")
        print(result.circuit.draw())
    if args.qasm:
        print("--- qasm ---")
        try:
            print(to_qasm(result.circuit))
        except Exception as exc:  # Initialize-based states have no QASM2 form
            print(f"(cannot export to OpenQASM 2.0: {exc})", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
