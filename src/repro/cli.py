"""Command-line runner: ``qutes program.qut``.

Options mirror what a user of the original implementation gets from its
runner scripts: print the program output, optionally dump the generated
circuit (text or OpenQASM 2.0) and the final values of global variables.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .lang import QutesError, run_file
from .qsim.backends import NOISE_CHANNELS, build_noisy_backend
from .qsim.exceptions import BackendError, SimulationError
from .qsim.qasm import to_qasm

__all__ = ["main", "build_arg_parser"]


def build_arg_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="qutes",
        description="Run a Qutes program on the bundled simulation backends.",
    )
    parser.add_argument("program", nargs="?", default=None, help="path to the .qut source file")
    parser.add_argument("--seed", type=int, default=None, help="RNG seed for measurements")
    parser.add_argument("--shots", type=int, default=1024, help="shots used by sample()")
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="execution backend for the statistics builtins (sample, min_of, "
        "max_of); see --list-backends",
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="print the registered execution backends and exit",
    )
    parser.add_argument(
        "--noise",
        type=float,
        default=None,
        metavar="P",
        help="inject noise with probability P per qubit touched by each gate "
        "into the selected backend (statevector and stabilizer take the "
        "trajectory/Pauli-frame model, density_matrix the exact Kraus channel)",
    )
    parser.add_argument(
        "--noise-model",
        default="depolarizing",
        choices=sorted(NOISE_CHANNELS),
        help="noise channel used with --noise (default: depolarizing)",
    )
    parser.add_argument("--show-circuit", action="store_true", help="print the logged circuit")
    parser.add_argument("--qasm", action="store_true", help="print the OpenQASM 2.0 export")
    parser.add_argument("--show-variables", action="store_true", help="print final global variables")
    parser.add_argument("--ast", action="store_true", help="print the parsed AST and exit")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by the ``qutes`` console script."""
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.list_backends:
        from .qsim.backends import list_backends

        for name in list_backends():
            print(name)
        return 0
    if args.program is None:
        parser.error("the program argument is required (or use --list-backends)")
    if args.ast:
        from .lang.ast_printer import dump_ast
        from .lang.parser import parse

        try:
            with open(args.program, "r", encoding="utf-8") as handle:
                print(dump_ast(parse(handle.read())))
            return 0
        except FileNotFoundError:
            print(f"error: no such file: {args.program}", file=sys.stderr)
            return 2
        except QutesError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    backend = args.backend
    try:
        if args.noise is not None:
            backend = build_noisy_backend(args.backend, args.noise, args.noise_model, args.seed)
        result = run_file(args.program, shots=args.shots, seed=args.seed, backend=backend)
    except FileNotFoundError:
        print(f"error: no such file: {args.program}", file=sys.stderr)
        return 2
    except (QutesError, BackendError, SimulationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if result.output:
        print(result.printed)
    if args.show_variables:
        print("--- variables ---")
        for name, value in result.variables.items():
            print(f"{name} = {value}")
    if args.show_circuit:
        print("--- circuit ---")
        print(result.circuit.draw())
    if args.qasm:
        print("--- qasm ---")
        try:
            print(to_qasm(result.circuit))
        except Exception as exc:  # Initialize-based states have no QASM2 form
            print(f"(cannot export to OpenQASM 2.0: {exc})", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
