"""Command-line runner: ``qutes program.qut``.

Options mirror what a user of the original implementation gets from its
runner scripts: print the program output, optionally dump the generated
circuit (text or OpenQASM 2.0) and the final values of global variables.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .lang import QutesError, run_file
from .qsim.backends import NOISE_CHANNELS, build_noisy_backend, resolve_backend
from .qsim.exceptions import BackendError, QasmError, SimulationError
from .qsim.qasm import from_qasm_file, to_qasm

__all__ = ["main", "build_arg_parser"]


def build_arg_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="qutes",
        description="Run a Qutes program on the bundled simulation backends.",
    )
    parser.add_argument("program", nargs="?", default=None, help="path to the .qut source file")
    parser.add_argument(
        "--from-qasm",
        default=None,
        metavar="FILE",
        help="run an OpenQASM 2.0 circuit file instead of a Qutes program "
        "(composes with --backend/--noise/--shots/--seed; circuits without "
        "measurements get a final measure-all)",
    )
    parser.add_argument("--seed", type=int, default=None, help="RNG seed for measurements")
    parser.add_argument("--shots", type=int, default=1024, help="shots used by sample()")
    parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME",
        help="execution backend for the statistics builtins (sample, min_of, "
        "max_of); see --list-backends",
    )
    parser.add_argument(
        "--list-backends",
        action="store_true",
        help="print the registered execution backends and exit",
    )
    parser.add_argument(
        "--noise",
        type=float,
        default=None,
        metavar="P",
        help="inject noise with probability P per qubit touched by each gate "
        "into the selected backend (statevector and stabilizer take the "
        "trajectory/Pauli-frame model, density_matrix the exact Kraus channel)",
    )
    parser.add_argument(
        "--noise-model",
        default="depolarizing",
        choices=sorted(NOISE_CHANNELS),
        help="noise channel used with --noise (default: depolarizing)",
    )
    parser.add_argument("--show-circuit", action="store_true", help="print the logged circuit")
    parser.add_argument("--qasm", action="store_true", help="print the OpenQASM 2.0 export")
    parser.add_argument("--show-variables", action="store_true", help="print final global variables")
    parser.add_argument("--ast", action="store_true", help="print the parsed AST and exit")
    return parser


def _run_qasm_file(args: argparse.Namespace) -> int:
    """Execute an imported OpenQASM 2.0 circuit on the selected backend."""
    try:
        circuit = from_qasm_file(args.from_qasm)
    except FileNotFoundError:
        print(f"error: no such file: {args.from_qasm}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot read {args.from_qasm}: {exc}", file=sys.stderr)
        return 2
    except UnicodeDecodeError:
        print(f"error: {args.from_qasm} is not a UTF-8 text file", file=sys.stderr)
        return 1
    except QasmError as exc:
        print(f"error: {args.from_qasm}: {exc}", file=sys.stderr)
        return 1
    if args.show_circuit:
        print("--- circuit ---")
        print(circuit.draw())
    if args.qasm:
        print("--- qasm ---")
        try:
            print(to_qasm(circuit), end="")
        except Exception as exc:  # defensive: every importable gate exports today
            print(f"(cannot export to OpenQASM 2.0: {exc})", file=sys.stderr)
    if circuit.num_qubits == 0:
        # a header-only program is valid QASM; there is just nothing to run
        print(f"note: {args.from_qasm} declares no qubits; nothing to run", file=sys.stderr)
        return 0
    if not circuit.has_measurements():
        # mirror what hardware toolchains do with measurement-free circuits:
        # sample every qubit at the end instead of returning nothing
        circuit.measure_all()
    try:
        if args.noise is not None:
            backend = build_noisy_backend(args.backend, args.noise, args.noise_model, args.seed)
        else:
            backend = resolve_backend(args.backend, default_seed=args.seed)
        counts = backend.run(circuit, shots=args.shots).result().get_counts()
    except (BackendError, SimulationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for bitstring, count in sorted(counts.items(), key=lambda kv: (-kv[1], kv[0])):
        print(f"{bitstring} {count}")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point used by the ``qutes`` console script."""
    try:
        return _main(argv)
    except BrokenPipeError:
        # the downstream consumer (e.g. `qutes --from-qasm ... | head`)
        # closed the pipe mid-print.  Swap both streams for /dev/null so the
        # interpreter's exit-time flush cannot raise again, and exit with
        # the conventional SIGPIPE status (like cat/grep) — never 0, since
        # the broken stream may have been stderr carrying an error report
        devnull = os.open(os.devnull, os.O_WRONLY)
        for stream in (sys.stdout, sys.stderr):
            try:
                os.dup2(devnull, stream.fileno())
            except (OSError, ValueError):
                pass
        return 141


def _main(argv: Optional[List[str]] = None) -> int:
    parser = build_arg_parser()
    args = parser.parse_args(argv)
    if args.list_backends:
        from .qsim.backends import list_backends

        for name in list_backends():
            print(name)
        return 0
    if args.from_qasm is not None:
        if args.program is not None:
            parser.error("pass either a .qut program or --from-qasm FILE, not both")
        if args.ast:
            parser.error("--ast applies to Qutes programs, not --from-qasm input")
        if args.show_variables:
            parser.error("--show-variables applies to Qutes programs, not --from-qasm input")
        return _run_qasm_file(args)
    if args.program is None:
        parser.error("the program argument is required (or use --list-backends / --from-qasm)")
    if args.ast:
        from .lang.ast_printer import dump_ast
        from .lang.parser import parse

        try:
            with open(args.program, "r", encoding="utf-8") as handle:
                print(dump_ast(parse(handle.read())))
            return 0
        except FileNotFoundError:
            print(f"error: no such file: {args.program}", file=sys.stderr)
            return 2
        except QutesError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1
    backend = args.backend
    try:
        if args.noise is not None:
            backend = build_noisy_backend(args.backend, args.noise, args.noise_model, args.seed)
        result = run_file(args.program, shots=args.shots, seed=args.seed, backend=backend)
    except FileNotFoundError:
        print(f"error: no such file: {args.program}", file=sys.stderr)
        return 2
    except (QutesError, BackendError, SimulationError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    if result.output:
        print(result.printed)
    if args.show_variables:
        print("--- variables ---")
        for name, value in result.variables.items():
            print(f"{name} = {value}")
    if args.show_circuit:
        print("--- circuit ---")
        print(result.circuit.draw())
    if args.qasm:
        print("--- qasm ---")
        try:
            print(to_qasm(result.circuit))
        except Exception as exc:  # Initialize-based states have no QASM2 form
            print(f"(cannot export to OpenQASM 2.0: {exc})", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
