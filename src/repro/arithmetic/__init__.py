"""Quantum arithmetic substrate.

Circuit families used by the Qutes language built-ins:

* :mod:`repro.arithmetic.qft` -- quantum Fourier transform,
* :mod:`repro.arithmetic.adder` -- Cuccaro ripple-carry and Draper QFT adders,
* :mod:`repro.arithmetic.comparator` -- carry-based magnitude comparison,
* :mod:`repro.arithmetic.multiplier` -- Fourier-basis multiplier,
* :mod:`repro.arithmetic.rotations` -- constant-depth cyclic register rotation
  (the Faro--Pavone--Viola construction used by the Qutes shift operators).
"""

from .qft import build_qft, build_iqft, qft_circuit
from .adder import (
    build_ripple_carry_adder,
    build_draper_adder,
    build_constant_adder,
    ripple_carry_adder_circuit,
    draper_adder_circuit,
)
from .comparator import build_greater_than, comparator_circuit
from .multiplier import build_fourier_multiplier, multiplier_circuit
from .rotations import (
    rotate_indices,
    build_rotation_circuit,
    rotation_circuit,
    rotation_depth,
)

__all__ = [
    "build_qft",
    "build_iqft",
    "qft_circuit",
    "build_ripple_carry_adder",
    "build_draper_adder",
    "build_constant_adder",
    "ripple_carry_adder_circuit",
    "draper_adder_circuit",
    "build_greater_than",
    "comparator_circuit",
    "build_fourier_multiplier",
    "multiplier_circuit",
    "rotate_indices",
    "build_rotation_circuit",
    "rotation_circuit",
    "rotation_depth",
]
