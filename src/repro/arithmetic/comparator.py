"""Quantum magnitude comparator.

Uses the carry trick: the carry-out of ``a + NOT(b)`` over ``n`` bits equals
``1`` exactly when ``a > b``.  The construction runs the MAJ half of a
Cuccaro adder to compute the top carry, copies it into the result qubit, and
then un-computes, leaving both operand registers unchanged.
"""

from __future__ import annotations

from typing import Sequence

from ..qsim.circuit import QuantumCircuit
from ..qsim.exceptions import CircuitError
from ..qsim.registers import QuantumRegister
from .adder import _maj, _uma

__all__ = ["build_greater_than", "comparator_circuit"]


def build_greater_than(
    circuit: QuantumCircuit,
    a_qubits: Sequence,
    b_qubits: Sequence,
    result_qubit,
    carry_qubit,
) -> QuantumCircuit:
    """Append a circuit setting ``result ^= (a > b)`` onto *circuit*.

    ``carry_qubit`` is an ancilla that must start in |0> and is restored.
    Both operand registers are left unchanged.
    """
    a_qubits = list(a_qubits)
    b_qubits = list(b_qubits)
    if len(a_qubits) != len(b_qubits):
        raise CircuitError("comparator requires equally sized registers")
    n = len(a_qubits)
    if n == 0:
        raise CircuitError("cannot compare empty registers")

    for qb in b_qubits:
        circuit.x(qb)

    _maj(circuit, carry_qubit, b_qubits[0], a_qubits[0])
    for i in range(1, n):
        _maj(circuit, a_qubits[i - 1], b_qubits[i], a_qubits[i])

    circuit.cx(a_qubits[n - 1], result_qubit)

    for i in reversed(range(1, n)):
        _reverse_maj(circuit, a_qubits[i - 1], b_qubits[i], a_qubits[i])
    _reverse_maj(circuit, carry_qubit, b_qubits[0], a_qubits[0])

    for qb in b_qubits:
        circuit.x(qb)
    return circuit


def _reverse_maj(circuit: QuantumCircuit, c, b, a) -> None:
    # exact inverse of the MAJ gate sequence (all constituent gates are
    # self-inverse, so reversing the order suffices)
    circuit.ccx(c, b, a)
    circuit.cx(a, c)
    circuit.cx(a, b)


def comparator_circuit(num_bits: int) -> QuantumCircuit:
    """Standalone ``a > b`` comparator.

    Registers, in order: ``a``, ``b`` (*num_bits* each), ``res`` (1 qubit
    receiving the comparison), ``anc`` (1 ancilla).
    """
    a = QuantumRegister(num_bits, "a")
    b = QuantumRegister(num_bits, "b")
    res = QuantumRegister(1, "res")
    anc = QuantumRegister(1, "anc")
    qc = QuantumCircuit(a, b, res, anc, name=f"greater_than_{num_bits}")
    build_greater_than(qc, list(a), list(b), res[0], anc[0])
    return qc
