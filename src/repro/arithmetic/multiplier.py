"""Fourier-basis (QFT) multiplier.

Computes ``prod <- prod + a * b (mod 2^m)`` out of place: the product
register accumulates, so starting it in |0> yields the plain product.  Each
pair of operand bits contributes a doubly-controlled phase in the Fourier
basis of the product register, which keeps the construction ancilla-free.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..qsim.circuit import QuantumCircuit
from ..qsim.exceptions import CircuitError
from ..qsim.registers import QuantumRegister
from .qft import build_iqft, build_qft

__all__ = ["build_fourier_multiplier", "multiplier_circuit"]


def build_fourier_multiplier(
    circuit: QuantumCircuit,
    a_qubits: Sequence,
    b_qubits: Sequence,
    product_qubits: Sequence,
) -> QuantumCircuit:
    """Append ``product <- product + a*b (mod 2^m)`` onto *circuit*."""
    a_qubits = list(a_qubits)
    b_qubits = list(b_qubits)
    product_qubits = list(product_qubits)
    m = len(product_qubits)
    if m == 0:
        raise CircuitError("product register must not be empty")

    build_qft(circuit, product_qubits, do_swaps=False)
    # After the no-swap QFT, product qubit j carries phase
    # 2*pi*(p mod 2^(j+1))/2^(j+1); adding a*b means adding, for every pair of
    # set operand bits (i, k), the value 2^(i+k) -- i.e. a phase
    # pi / 2^(j - i - k) on every product qubit j >= i + k.
    for i in range(len(a_qubits)):
        for k in range(len(b_qubits)):
            shift = i + k
            for j in range(shift, m):
                angle = math.pi / (2 ** (j - shift))
                circuit.mcp(angle, [a_qubits[i], b_qubits[k]], product_qubits[j])
    build_iqft(circuit, product_qubits, do_swaps=False)
    return circuit


def multiplier_circuit(num_bits: int, product_bits: int | None = None) -> QuantumCircuit:
    """Standalone multiplier with registers ``a``, ``b`` and ``prod``."""
    if product_bits is None:
        product_bits = 2 * num_bits
    a = QuantumRegister(num_bits, "a")
    b = QuantumRegister(num_bits, "b")
    prod = QuantumRegister(product_bits, "prod")
    qc = QuantumCircuit(a, b, prod, name=f"fourier_mul_{num_bits}")
    build_fourier_multiplier(qc, list(a), list(b), list(prod))
    return qc
