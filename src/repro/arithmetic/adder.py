"""Quantum adders.

Two families are provided, both operating on little-endian registers:

* the Cuccaro (CDKM) ripple-carry adder -- Toffoli/CNOT based, one ancilla,
  depth O(n); this is the default used by the Qutes ``+`` operator on
  ``quint`` values;
* the Draper adder -- performs the addition in the Fourier basis with
  controlled-phase gates, no ancilla;
* a constant adder -- adds a classically known integer in the Fourier basis,
  used by the ``TypeCastingHandler`` when mixing classical and quantum
  operands.

All in-place adders compute ``b <- (a + b) mod 2**len(b)`` and leave ``a``
unchanged.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

from ..qsim.circuit import QuantumCircuit
from ..qsim.exceptions import CircuitError
from ..qsim.registers import QuantumRegister
from .qft import build_iqft, build_qft

__all__ = [
    "build_ripple_carry_adder",
    "build_draper_adder",
    "build_constant_adder",
    "ripple_carry_adder_circuit",
    "draper_adder_circuit",
]


def _maj(circuit: QuantumCircuit, c, b, a) -> None:
    circuit.cx(a, b)
    circuit.cx(a, c)
    circuit.ccx(c, b, a)


def _uma(circuit: QuantumCircuit, c, b, a) -> None:
    circuit.ccx(c, b, a)
    circuit.cx(a, c)
    circuit.cx(c, b)


def build_ripple_carry_adder(
    circuit: QuantumCircuit,
    a_qubits: Sequence,
    b_qubits: Sequence,
    carry_qubit,
    cout_qubit=None,
) -> QuantumCircuit:
    """Append a Cuccaro adder computing ``b <- a + b`` onto *circuit*.

    ``carry_qubit`` must be an ancilla in |0> (it is returned to |0>).  When
    *cout_qubit* is given it receives the final carry, turning the adder into
    a full ``len(b)+1``-bit addition.
    """
    a_qubits = list(a_qubits)
    b_qubits = list(b_qubits)
    if len(a_qubits) != len(b_qubits):
        raise CircuitError("ripple-carry adder requires equally sized registers")
    n = len(a_qubits)
    if n == 0:
        raise CircuitError("cannot add empty registers")

    _maj(circuit, carry_qubit, b_qubits[0], a_qubits[0])
    for i in range(1, n):
        _maj(circuit, a_qubits[i - 1], b_qubits[i], a_qubits[i])
    if cout_qubit is not None:
        circuit.cx(a_qubits[n - 1], cout_qubit)
    for i in reversed(range(1, n)):
        _uma(circuit, a_qubits[i - 1], b_qubits[i], a_qubits[i])
    _uma(circuit, carry_qubit, b_qubits[0], a_qubits[0])
    return circuit


def build_draper_adder(
    circuit: QuantumCircuit,
    a_qubits: Sequence,
    b_qubits: Sequence,
) -> QuantumCircuit:
    """Append a Draper (QFT) adder computing ``b <- a + b`` onto *circuit*."""
    a_qubits = list(a_qubits)
    b_qubits = list(b_qubits)
    if len(a_qubits) != len(b_qubits):
        raise CircuitError("Draper adder requires equally sized registers")
    n = len(b_qubits)
    build_qft(circuit, b_qubits, do_swaps=False)
    # In the no-swap QFT the phase accumulated on b_qubits[j] encodes the
    # bits j..n-1; adding a shifts that phase by the matching powers of two.
    for j in range(n):
        for k in range(j + 1):
            angle = math.pi / (2 ** (j - k))
            circuit.cp(angle, a_qubits[k], b_qubits[j])
    build_iqft(circuit, b_qubits, do_swaps=False)
    return circuit


def build_constant_adder(
    circuit: QuantumCircuit,
    value: int,
    target_qubits: Sequence,
) -> QuantumCircuit:
    """Append ``target <- target + value (mod 2^n)`` for a classical *value*."""
    target_qubits = list(target_qubits)
    n = len(target_qubits)
    if n == 0:
        raise CircuitError("cannot add into an empty register")
    value %= 2**n
    build_qft(circuit, target_qubits, do_swaps=False)
    for j in range(n):
        angle = 0.0
        for k in range(j + 1):
            if (value >> k) & 1:
                angle += math.pi / (2 ** (j - k))
        if angle:
            circuit.p(angle, target_qubits[j])
    build_iqft(circuit, target_qubits, do_swaps=False)
    return circuit


def ripple_carry_adder_circuit(num_bits: int, with_carry_out: bool = False) -> QuantumCircuit:
    """Standalone Cuccaro adder circuit.

    Registers, in order: ``a`` (*num_bits*), ``b`` (*num_bits*), ``anc`` (1
    carry-in ancilla) and optionally ``cout`` (1 qubit).
    """
    a = QuantumRegister(num_bits, "a")
    b = QuantumRegister(num_bits, "b")
    anc = QuantumRegister(1, "anc")
    regs = [a, b, anc]
    cout = None
    if with_carry_out:
        cout = QuantumRegister(1, "cout")
        regs.append(cout)
    qc = QuantumCircuit(*regs, name=f"cuccaro_add_{num_bits}")
    build_ripple_carry_adder(qc, list(a), list(b), anc[0], cout[0] if cout else None)
    return qc


def draper_adder_circuit(num_bits: int) -> QuantumCircuit:
    """Standalone Draper adder circuit with registers ``a`` and ``b``."""
    a = QuantumRegister(num_bits, "a")
    b = QuantumRegister(num_bits, "b")
    qc = QuantumCircuit(a, b, name=f"draper_add_{num_bits}")
    build_draper_adder(qc, list(a), list(b))
    return qc
