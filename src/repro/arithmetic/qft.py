"""Quantum Fourier transform circuits.

Registers are little-endian (qubit 0 is the least-significant bit of the
encoded integer), matching the rest of the package.  ``build_qft`` maps the
basis state |x> to ``(1/sqrt(2^n)) * sum_y exp(2 pi i x y / 2^n) |y>``.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..qsim.circuit import QuantumCircuit

__all__ = ["build_qft", "build_iqft", "qft_circuit", "iqft_circuit"]


def build_qft(circuit: QuantumCircuit, qubits: Sequence, do_swaps: bool = True) -> QuantumCircuit:
    """Append a QFT over *qubits* (little-endian) to *circuit*."""
    qubits = list(qubits)
    n = len(qubits)
    for j in reversed(range(n)):
        circuit.h(qubits[j])
        for k in range(j):
            angle = math.pi / (2 ** (j - k))
            circuit.cp(angle, qubits[k], qubits[j])
    if do_swaps:
        for i in range(n // 2):
            circuit.swap(qubits[i], qubits[n - 1 - i])
    return circuit


def build_iqft(circuit: QuantumCircuit, qubits: Sequence, do_swaps: bool = True) -> QuantumCircuit:
    """Append the inverse QFT over *qubits* to *circuit*."""
    qubits = list(qubits)
    n = len(qubits)
    if do_swaps:
        for i in range(n // 2):
            circuit.swap(qubits[i], qubits[n - 1 - i])
    for j in range(n):
        for k in reversed(range(j)):
            angle = -math.pi / (2 ** (j - k))
            circuit.cp(angle, qubits[k], qubits[j])
        circuit.h(qubits[j])
    return circuit


def qft_circuit(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """Standalone QFT circuit on *num_qubits* qubits."""
    qc = QuantumCircuit(num_qubits, name=f"qft_{num_qubits}")
    return build_qft(qc, list(range(num_qubits)), do_swaps=do_swaps)


def iqft_circuit(num_qubits: int, do_swaps: bool = True) -> QuantumCircuit:
    """Standalone inverse-QFT circuit on *num_qubits* qubits."""
    qc = QuantumCircuit(num_qubits, name=f"iqft_{num_qubits}")
    return build_iqft(qc, list(range(num_qubits)), do_swaps=do_swaps)
