"""Cyclic rotation of quantum registers.

The paper's cyclic-shift instruction builds on the constant-depth rotation
construction of Faro, Pavone and Viola: a cyclic rotation is the composition
of three reversals, and each reversal is a single layer of disjoint SWAP
gates, so the whole permutation has constant circuit depth (at most three
SWAP layers) independent of the register size.  This module provides

* :func:`rotate_indices` -- the zero-gate variant that simply relabels which
  physical qubit holds which logical position (what the Qutes runtime uses
  for ``<<`` / ``>>`` by default), and
* :func:`build_rotation_circuit` -- the explicit SWAP-network circuit, used
  when a materialised circuit is required (e.g. for QASM export or for the
  depth measurements of the cyclic-shift benchmark).
"""

from __future__ import annotations

from typing import List, Sequence

from ..qsim.circuit import QuantumCircuit
from ..qsim.exceptions import CircuitError
from ..qsim.registers import QuantumRegister

__all__ = ["rotate_indices", "build_rotation_circuit", "rotation_circuit", "rotation_depth"]


def rotate_indices(qubits: Sequence, k: int) -> List:
    """Return the qubit list after a cyclic left rotation by *k* positions.

    Position ``i`` of the result holds what was at position ``(i + k) % n``,
    so the *value* encoded little-endian in the register is rotated right by
    ``k`` bit positions.  No gates are emitted: this is the O(1) logical
    relabelling the language runtime performs.
    """
    qubits = list(qubits)
    n = len(qubits)
    if n == 0:
        return []
    k %= n
    return qubits[k:] + qubits[:k]


def _reversal_layer(circuit: QuantumCircuit, qubits: Sequence) -> None:
    qubits = list(qubits)
    for i in range(len(qubits) // 2):
        circuit.swap(qubits[i], qubits[len(qubits) - 1 - i])


def build_rotation_circuit(circuit: QuantumCircuit, qubits: Sequence, k: int) -> QuantumCircuit:
    """Append a cyclic left rotation by *k* of *qubits* as a SWAP network.

    Implemented as three reversals (``reverse(0..k-1)``, ``reverse(k..n-1)``,
    ``reverse(0..n-1)``), i.e. at most three constant-depth layers of
    disjoint SWAP gates regardless of the register width.
    """
    qubits = list(qubits)
    n = len(qubits)
    if n == 0:
        raise CircuitError("cannot rotate an empty register")
    k %= n
    if k == 0:
        return circuit
    _reversal_layer(circuit, qubits[:k])
    _reversal_layer(circuit, qubits[k:])
    _reversal_layer(circuit, qubits)
    return circuit


def rotation_circuit(num_qubits: int, k: int) -> QuantumCircuit:
    """Standalone rotation circuit on a register named ``r``."""
    reg = QuantumRegister(num_qubits, "r")
    qc = QuantumCircuit(reg, name=f"rot_{num_qubits}_{k}")
    build_rotation_circuit(qc, list(reg), k)
    return qc


def rotation_depth(num_qubits: int, k: int) -> int:
    """Circuit depth (in SWAP layers) of the explicit rotation network."""
    return rotation_circuit(num_qubits, k).depth()
